//! Hand-scheduled device-program generators.
//!
//! These play the role of the expert-written kernels of the paper's
//! evaluation (cuBLAS, cuDNN, CUTLASS-style references, ThunderKittens,
//! FlashAttention-3): warp-specialized, deeply pipelined programs written
//! directly against the simulator's device API, with explicit
//! communication and synchronization — everything Cypress automates.
//!
//! The same generators, with the heuristic knobs flipped, produce the
//! Triton-like baselines: bulk-synchronous scheduling, `cp.async` instead
//! of TMA, block-wide barriers between phases, shared-memory reduction
//! accumulators, and no load/compute overlap inside fused loop bodies
//! (§5.2's observed behaviours).

use cypress_sim::{
    BinOp, Cond, Expr, Instr, Kernel, KernelBuilder, RedOp, RoleKind, SimtOp, Slice, UnOp,
};
use cypress_tensor::DType;

/// Configuration for the GEMM-family generator.
#[derive(Debug, Clone, Copy)]
pub struct GemmSchedule {
    /// Block tile rows.
    pub tm: usize,
    /// Block tile columns.
    pub tn: usize,
    /// K tile.
    pub tk: usize,
    /// Consumer warpgroups.
    pub wgs: usize,
    /// Pipeline stages.
    pub pipe: usize,
    /// Warp-specialize (dedicated DMA warp + TMA); `false` = bulk-
    /// synchronous with `cp.async` issued by warpgroup 0 (Triton's
    /// default data path).
    pub warpspec: bool,
    /// Dual GEMM: a second B operand accumulated into the same tile.
    pub dual: bool,
    /// Serialize the second GEMM's load behind the first GEMM (the Triton
    /// Dual-GEMM behaviour: no partial overlap of the B2 load).
    pub serialize_dual: bool,
    /// Fused row-sum reduction of A.
    pub reduction: bool,
    /// Keep the reduction accumulator in shared memory and only reduce
    /// after waiting on the Tensor Core (the Triton GEMM+Reduction
    /// behaviour).
    pub smem_reduction: bool,
}

impl GemmSchedule {
    /// A cuBLAS-class schedule.
    #[must_use]
    pub fn expert() -> Self {
        GemmSchedule {
            tm: 128,
            tn: 256,
            tk: 64,
            wgs: 2,
            pipe: 3,
            warpspec: true,
            dual: false,
            serialize_dual: false,
            reduction: false,
            smem_reduction: false,
        }
    }

    /// A Triton-class schedule.
    #[must_use]
    pub fn triton() -> Self {
        GemmSchedule {
            tm: 128,
            tn: 256,
            tk: 64,
            wgs: 2,
            pipe: 3,
            warpspec: false,
            dual: false,
            serialize_dual: true,
            reduction: false,
            smem_reduction: true,
        }
    }
}

/// Build a GEMM-family kernel: `C[l] = A[l] (B1[l] + optionally B2[l])`
/// over `batch` folded batches, with optional fused row-sum into `Y`.
///
/// # Panics
///
/// Panics if tile sizes do not divide the problem.
#[allow(clippy::too_many_lines)]
#[must_use]
pub fn gemm_kernel(
    name: &str,
    batch: usize,
    m: usize,
    n: usize,
    k: usize,
    s: GemmSchedule,
) -> Kernel {
    assert!(
        m.is_multiple_of(s.tm) && n.is_multiple_of(s.tn) && k.is_multiple_of(s.tk),
        "tiles must divide the problem"
    );
    assert!(s.tm.is_multiple_of(s.wgs));
    let wg_rows = s.tm / s.wgs;
    let trips = (k / s.tk) as i64;
    let mut b = KernelBuilder::new(name, [m / s.tm, n / s.tn, batch]);

    let gc = b.param("C", batch * m, n, DType::F16);
    let ga = b.param("A", batch * m, k, DType::F16);
    let gb1 = b.param("B1", batch * k, n, DType::F16);
    let gb2 = s.dual.then(|| b.param("B2", batch * k, n, DType::F16));
    let gy = s
        .reduction
        .then(|| b.param("Y", batch * m, n / s.tn, DType::F16));

    let sa = b.smem("sA", s.tm, s.tk, DType::F16, s.pipe);
    let sb1 = b.smem("sB1", s.tk, s.tn, DType::F16, s.pipe);
    let sb2 = s
        .dual
        .then(|| b.smem("sB2", s.tk, s.tn, DType::F16, s.pipe));
    let sc = b.smem("sC", s.tm, s.tn, DType::F16, 1);
    let sy = s.reduction.then(|| b.smem("sY", s.tm, 1, DType::F32, 1));
    let sy_acc = (s.reduction && s.smem_reduction).then(|| b.smem("sYacc", s.tm, 1, DType::F32, 1));

    let acc = b.frag("acc", wg_rows, s.tn);
    let yacc = (s.reduction && !s.smem_reduction).then(|| b.frag("yacc", wg_rows, 1));

    let prod_a = b.mbar(1);
    let prod_b1 = b.mbar(1);
    let prod_b2 = s.dual.then(|| b.mbar(1));
    let cons = b.mbar(s.wgs);
    let copyout = b.mbar(s.wgs);

    // Global row origin folds the batch: row0 = bz*M + bx*TM.
    let a_row = || Expr::block_z() * m as i64 + Expr::block_x() * s.tm as i64;
    let b_row = |kv: Expr| Expr::block_z() * k as i64 + kv * s.tk as i64;
    let kvar = b.fresh_var();
    let kexpr = || Expr::var(kvar);
    let stage = || Expr::var(kvar) % s.pipe as i64;

    let load_a = Instr::TmaLoad {
        src: Slice::param(ga)
            .at(a_row(), kexpr() * s.tk as i64)
            .extent(s.tm, s.tk),
        dst: Slice::smem(sa).stage(stage()).extent(s.tm, s.tk),
        bar: prod_a,
    };
    let load_b1 = Instr::TmaLoad {
        src: Slice::param(gb1)
            .at(b_row(kexpr()), Expr::block_y() * s.tn as i64)
            .extent(s.tk, s.tn),
        dst: Slice::smem(sb1).stage(stage()).extent(s.tk, s.tn),
        bar: prod_b1,
    };
    let load_b2 = gb2.map(|g| Instr::TmaLoad {
        src: Slice::param(g)
            .at(b_row(kexpr()), Expr::block_y() * s.tn as i64)
            .extent(s.tk, s.tn),
        dst: Slice::smem(sb2.expect("dual"))
            .stage(stage())
            .extent(s.tk, s.tn),
        bar: prod_b2.expect("dual"),
    });

    if s.warpspec {
        // DMA warp: Fig. 1b lines 6-19.
        let mut loop_body = vec![Instr::If {
            cond: Cond::Ge(kexpr(), Expr::lit(s.pipe as i64)),
            then_: vec![Instr::MbarWait { bar: cons }],
            else_: vec![],
        }];
        loop_body.push(load_a.clone());
        loop_body.push(load_b1.clone());
        if let Some(l) = load_b2.clone() {
            loop_body.push(l);
        }
        let mut dma = vec![Instr::Loop {
            var: kvar,
            count: Expr::lit(trips),
            body: loop_body,
        }];
        dma.push(Instr::MbarWait { bar: copyout });
        dma.push(Instr::TmaStore {
            src: Slice::smem(sc).extent(s.tm, s.tn),
            dst: Slice::param(gc)
                .at(a_row(), Expr::block_y() * s.tn as i64)
                .extent(s.tm, s.tn),
        });
        if let (Some(y), Some(sy)) = (gy, sy) {
            dma.push(Instr::TmaStore {
                src: Slice::smem(sy).extent(s.tm, 1),
                dst: Slice::param(y).at(a_row(), Expr::block_y()).extent(s.tm, 1),
            });
        }
        dma.push(Instr::TmaStoreWait);
        b.role(RoleKind::Dma, dma);
    }

    for wg in 0..s.wgs {
        let row0 = wg * wg_rows;
        let mut body = Vec::new();
        if !s.warpspec && wg == 0 {
            // Bulk-synchronous prologue: fill the first pipe-1 stages.
            for p in 0..(s.pipe - 1).min(trips as usize) {
                let kl = Expr::lit(p as i64);
                let stl = Expr::lit((p % s.pipe) as i64);
                body.push(Instr::CpAsyncLoad {
                    src: Slice::param(ga)
                        .at(a_row(), kl.clone() * s.tk as i64)
                        .extent(s.tm, s.tk),
                    dst: Slice::smem(sa).stage(stl.clone()).extent(s.tm, s.tk),
                    bar: prod_a,
                });
                body.push(Instr::CpAsyncLoad {
                    src: Slice::param(gb1)
                        .at(b_row(kl.clone()), Expr::block_y() * s.tn as i64)
                        .extent(s.tk, s.tn),
                    dst: Slice::smem(sb1).stage(stl.clone()).extent(s.tk, s.tn),
                    bar: prod_b1,
                });
                if !s.serialize_dual {
                    if let (Some(g), Some(sb2v), Some(pb2)) = (gb2, sb2, prod_b2) {
                        body.push(Instr::CpAsyncLoad {
                            src: Slice::param(g)
                                .at(b_row(kl), Expr::block_y() * s.tn as i64)
                                .extent(s.tk, s.tn),
                            dst: Slice::smem(sb2v).stage(stl).extent(s.tk, s.tn),
                            bar: pb2,
                        });
                    }
                }
            }
        }
        body.push(Instr::Simt(SimtOp::Fill {
            dst: Slice::frag(acc).extent(wg_rows, s.tn),
            value: 0.0,
        }));
        if let Some(y) = yacc {
            body.push(Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(y).extent(wg_rows, 1),
                value: 0.0,
            }));
        }
        if let Some(sy_acc) = sy_acc {
            if wg == 0 {
                body.push(Instr::Simt(SimtOp::Fill {
                    dst: Slice::smem(sy_acc).extent(s.tm, 1),
                    value: 0.0,
                }));
            }
        }

        let mut it = Vec::new();
        if !s.warpspec && wg == 0 {
            // Bulk-synchronous: warpgroup 0 issues cp.async with lookahead
            // (Triton's num_stages pipelining). Wait for outstanding Tensor
            // Core work before overwriting a stage.
            let look = (s.pipe - 1) as i64;
            it.push(Instr::If {
                cond: Cond::Lt(kexpr() + look, Expr::lit(trips)),
                then_: {
                    let st2 = || (Expr::var(kvar) + (s.pipe as i64 - 1)) % s.pipe as i64;
                    let k2 = || Expr::var(kvar) + (s.pipe as i64 - 1);
                    let mut v = vec![
                        Instr::WgmmaWait { pending: 0 },
                        Instr::CpAsyncLoad {
                            src: Slice::param(ga)
                                .at(a_row(), k2() * s.tk as i64)
                                .extent(s.tm, s.tk),
                            dst: Slice::smem(sa).stage(st2()).extent(s.tm, s.tk),
                            bar: prod_a,
                        },
                        Instr::CpAsyncLoad {
                            src: Slice::param(gb1)
                                .at(b_row(k2()), Expr::block_y() * s.tn as i64)
                                .extent(s.tk, s.tn),
                            dst: Slice::smem(sb1).stage(st2()).extent(s.tk, s.tn),
                            bar: prod_b1,
                        },
                    ];
                    if !s.serialize_dual {
                        if let (Some(g), Some(sb2), Some(pb2)) = (gb2, sb2, prod_b2) {
                            v.push(Instr::CpAsyncLoad {
                                src: Slice::param(g)
                                    .at(b_row(k2()), Expr::block_y() * s.tn as i64)
                                    .extent(s.tk, s.tn),
                                dst: Slice::smem(sb2).stage(st2()).extent(s.tk, s.tn),
                                bar: pb2,
                            });
                        }
                    }
                    v
                },
                else_: vec![],
            });
        }
        it.push(Instr::MbarWait { bar: prod_a });
        it.push(Instr::MbarWait { bar: prod_b1 });
        // First GEMM.
        it.push(Instr::Wgmma {
            a: Slice::smem(sa)
                .stage(stage())
                .at(row0, 0)
                .extent(wg_rows, s.tk),
            b: Slice::smem(sb1).stage(stage()).extent(s.tk, s.tn),
            acc: Slice::frag(acc).extent(wg_rows, s.tn),
            accumulate: true,
            transpose_b: false,
        });
        if s.dual {
            if s.serialize_dual {
                // Triton: wait for the first GEMM, only then load and run
                // the second — the §5.2 serialization.
                it.push(Instr::WgmmaWait { pending: 0 });
                if !s.warpspec && wg == 0 {
                    if let (Some(g), Some(sb2v), Some(pb2)) = (gb2, sb2, prod_b2) {
                        it.push(Instr::CpAsyncLoad {
                            src: Slice::param(g)
                                .at(b_row(kexpr()), Expr::block_y() * s.tn as i64)
                                .extent(s.tk, s.tn),
                            dst: Slice::smem(sb2v).stage(stage()).extent(s.tk, s.tn),
                            bar: pb2,
                        });
                    }
                }
            }
            it.push(Instr::MbarWait {
                bar: prod_b2.expect("dual"),
            });
            it.push(Instr::Wgmma {
                a: Slice::smem(sa)
                    .stage(stage())
                    .at(row0, 0)
                    .extent(wg_rows, s.tk),
                b: Slice::smem(sb2.expect("dual"))
                    .stage(stage())
                    .extent(s.tk, s.tn),
                acc: Slice::frag(acc).extent(wg_rows, s.tn),
                accumulate: true,
                transpose_b: false,
            });
        }
        if s.reduction {
            if s.smem_reduction {
                // Triton: wait on the Tensor Core, then reduce through the
                // shared-memory accumulator.
                it.push(Instr::WgmmaWait { pending: 0 });
                it.push(Instr::Simt(SimtOp::RowReduce {
                    op: RedOp::Sum,
                    src: Slice::smem(sa)
                        .stage(stage())
                        .at(row0, 0)
                        .extent(wg_rows, s.tk),
                    dst: Slice::smem(sy_acc.expect("smem reduction"))
                        .at(row0, 0)
                        .extent(wg_rows, 1),
                    include_dst: true,
                }));
            } else {
                // Overlapped: the SIMT reduction runs while the Tensor Core
                // computes (no wait needed — different units).
                it.push(Instr::Simt(SimtOp::RowReduce {
                    op: RedOp::Sum,
                    src: Slice::smem(sa)
                        .stage(stage())
                        .at(row0, 0)
                        .extent(wg_rows, s.tk),
                    dst: Slice::frag(yacc.expect("frag reduction")).extent(wg_rows, 1),
                    include_dst: true,
                }));
            }
        }
        it.push(Instr::WgmmaWait { pending: 0 });
        it.push(Instr::MbarArrive { bar: cons });
        if !s.warpspec {
            // Bulk-synchronous lockstep: Triton's codegen separates phases
            // with block-wide barriers.
            it.push(Instr::Syncthreads);
        }
        body.push(Instr::Loop {
            var: kvar,
            count: Expr::lit(trips),
            body: it,
        });

        // Epilogue: stage the accumulator and hand off to the TMA.
        body.push(Instr::Simt(SimtOp::Copy {
            src: Slice::frag(acc).extent(wg_rows, s.tn),
            dst: Slice::smem(sc).at(row0, 0).extent(wg_rows, s.tn),
        }));
        if let (Some(y), Some(sy)) = (yacc, sy) {
            body.push(Instr::Simt(SimtOp::Copy {
                src: Slice::frag(y).extent(wg_rows, 1),
                dst: Slice::smem(sy).at(row0, 0).extent(wg_rows, 1),
            }));
        }
        if let (Some(sy_acc), Some(sy)) = (sy_acc, sy) {
            if wg == 0 {
                body.push(Instr::Simt(SimtOp::Copy {
                    src: Slice::smem(sy_acc).extent(s.tm, 1),
                    dst: Slice::smem(sy).extent(s.tm, 1),
                }));
            }
        }
        if s.warpspec {
            body.push(Instr::MbarArrive { bar: copyout });
        } else if wg == 0 {
            body.push(Instr::Syncthreads);
            body.push(Instr::TmaStore {
                src: Slice::smem(sc).extent(s.tm, s.tn),
                dst: Slice::param(gc)
                    .at(a_row(), Expr::block_y() * s.tn as i64)
                    .extent(s.tm, s.tn),
            });
            if let (Some(y), Some(sy)) = (gy, sy) {
                body.push(Instr::TmaStore {
                    src: Slice::smem(sy).extent(s.tm, 1),
                    dst: Slice::param(y).at(a_row(), Expr::block_y()).extent(s.tm, 1),
                });
            }
            body.push(Instr::TmaStoreWait);
        } else {
            body.push(Instr::Syncthreads);
        }
        b.role(RoleKind::Compute(wg), body);
    }
    b.build()
}

/// Configuration for the attention generator.
#[derive(Debug, Clone, Copy)]
pub struct AttentionSchedule {
    /// Row tile per CTA.
    pub br: usize,
    /// K/V column tile.
    pub bc: usize,
    /// Consumer warpgroups.
    pub wgs: usize,
    /// Pipeline stages for K/V.
    pub pipe: usize,
    /// Process two K/V tiles per iteration with two score buffers
    /// (FlashAttention-3's pingpong).
    pub pingpong: bool,
    /// Persistent kernel: one CTA per SM iterating over work items (§5.3).
    pub persistent: bool,
    /// Bulk-synchronous Triton-style scheduling (no DMA warp, cp.async,
    /// block-wide barriers between phases).
    pub bulk_sync: bool,
}

/// Build a FlashAttention-family kernel over `heads` heads of `seq × d`.
///
/// # Panics
///
/// Panics if tile sizes do not divide the sequence length.
#[allow(clippy::too_many_lines)]
#[must_use]
pub fn attention_kernel(
    name: &str,
    heads: usize,
    seq: usize,
    d: usize,
    sms: usize,
    s: AttentionSchedule,
) -> Kernel {
    assert!(seq.is_multiple_of(s.br) && seq.is_multiple_of(s.bc));
    assert!(s.br.is_multiple_of(s.wgs));
    let wg_rows = s.br / s.wgs;
    let tiles_per_band = if s.pingpong {
        seq / (2 * s.bc)
    } else {
        seq / s.bc
    };
    let bands = seq / s.br;
    let total_work = heads * bands;
    let (grid, work_per_cta) = if s.persistent {
        let ctas = sms.min(total_work);
        (ctas, total_work.div_ceil(ctas))
    } else {
        (total_work, 1)
    };

    let mut b = KernelBuilder::new(name, [grid, 1, 1]);
    let go = b.param("O", heads * seq, d, DType::F16);
    let gq = b.param("Q", heads * seq, d, DType::F16);
    let gk = b.param("K", heads * seq, d, DType::F16);
    let gv = b.param("V", heads * seq, d, DType::F16);

    let kv_stage = s.pipe.max(1);
    let sq = b.smem("sQ", s.br, d, DType::F16, 1);
    let sk0 = b.smem("sK0", s.bc, d, DType::F16, kv_stage);
    let sv0 = b.smem("sV0", s.bc, d, DType::F16, kv_stage);
    let (sk1, sv1) = if s.pingpong {
        (
            Some(b.smem("sK1", s.bc, d, DType::F16, kv_stage)),
            Some(b.smem("sV1", s.bc, d, DType::F16, kv_stage)),
        )
    } else {
        (None, None)
    };
    let so = b.smem("sO", s.br, d, DType::F16, 1);

    let o = b.frag("o", wg_rows, d);
    let s0 = b.frag("s0", wg_rows, s.bc);
    let s1 = s.pingpong.then(|| b.frag("s1", wg_rows, s.bc));
    let mfr = b.frag("m", wg_rows, 1);
    let lfr = b.frag("l", wg_rows, 1);
    let tm = b.frag("tm", wg_rows, 1);

    let prod_q = b.mbar(1);
    let prod_k0 = b.mbar(1);
    let prod_v0 = b.mbar(1);
    let (prod_k1, prod_v1) = if s.pingpong {
        (Some(b.mbar(1)), Some(b.mbar(1)))
    } else {
        (None, None)
    };
    let cons = b.mbar(s.wgs);
    let copyout = b.mbar(s.wgs);

    let wvar = b.fresh_var(); // work-item loop
    let jvar = b.fresh_var(); // K/V tile loop

    // Work item -> (head, band) -> global row origins.
    let wid = || {
        if s.persistent {
            Expr::block_x() * work_per_cta as i64 + Expr::var(wvar)
        } else {
            Expr::block_x()
        }
    };
    let q_row = move || {
        let w = wid();
        (w.clone() / bands as i64) * seq as i64 + (w % bands as i64) * s.br as i64
    };
    let kv_row = move |j: Expr| (wid() / bands as i64) * seq as i64 + j * s.bc as i64;
    let stage = || Expr::var(jvar) % kv_stage as i64;
    let scale = 1.0 / (d as f32).sqrt();

    // ---- data movement program (shared between modes) ------------------
    let loads = |j0: Expr, cp: bool| -> Vec<Instr> {
        let mk = |g: usize, sm: usize, bar: usize, row: Expr| -> Instr {
            let src = Slice::param(g).at(row, 0).extent(s.bc, d);
            let dst = Slice::smem(sm).stage(stage()).extent(s.bc, d);
            if cp {
                Instr::CpAsyncLoad { src, dst, bar }
            } else {
                Instr::TmaLoad { src, dst, bar }
            }
        };
        let mut v = vec![
            mk(gk, sk0, prod_k0, kv_row(j0.clone())),
            mk(gv, sv0, prod_v0, kv_row(j0.clone())),
        ];
        if s.pingpong {
            v.push(mk(
                gk,
                sk1.expect("pp"),
                prod_k1.expect("pp"),
                kv_row(j0.clone() + 1),
            ));
            v.push(mk(
                gv,
                sv1.expect("pp"),
                prod_v1.expect("pp"),
                kv_row(j0 + 1),
            ));
        }
        v
    };
    let j0 = || {
        if s.pingpong {
            Expr::var(jvar) * 2
        } else {
            Expr::var(jvar)
        }
    };

    if !s.bulk_sync {
        // DMA warp.
        let mut per_item = vec![Instr::TmaLoad {
            src: Slice::param(gq).at(q_row(), 0).extent(s.br, d),
            dst: Slice::smem(sq).extent(s.br, d),
            bar: prod_q,
        }];
        let mut kv_loop = vec![Instr::If {
            cond: Cond::Ge(Expr::var(jvar), Expr::lit(kv_stage as i64)),
            then_: vec![Instr::MbarWait { bar: cons }],
            else_: vec![],
        }];
        kv_loop.extend(loads(j0(), false));
        per_item.push(Instr::Loop {
            var: jvar,
            count: Expr::lit(tiles_per_band as i64),
            body: kv_loop,
        });
        per_item.push(Instr::MbarWait { bar: copyout });
        per_item.push(Instr::TmaStore {
            src: Slice::smem(so).extent(s.br, d),
            dst: Slice::param(go).at(q_row(), 0).extent(s.br, d),
        });
        per_item.push(Instr::TmaStoreWait);
        let guarded = if s.persistent {
            vec![Instr::If {
                cond: Cond::Lt(wid(), Expr::lit(total_work as i64)),
                then_: per_item,
                else_: vec![],
            }]
        } else {
            per_item
        };
        b.role(
            RoleKind::Dma,
            vec![Instr::Loop {
                var: wvar,
                count: Expr::lit(work_per_cta as i64),
                body: guarded,
            }],
        );
    }

    for wg in 0..s.wgs {
        let row0 = wg * wg_rows;
        // One softmax + PV block over score buffer `sfrag` against K/V `ki`.
        let softmax_pv =
            |sfrag: usize, sk: usize, sv: usize, pk: usize, pv_bar: usize| -> Vec<Instr> {
                let sref = || Slice::frag(sfrag).extent(wg_rows, s.bc);
                let mut v = vec![
                    Instr::MbarWait { bar: pk },
                    Instr::Simt(SimtOp::Fill {
                        dst: sref(),
                        value: 0.0,
                    }),
                    Instr::Wgmma {
                        a: Slice::smem(sq).at(row0, 0).extent(wg_rows, d),
                        b: Slice::smem(sk).stage(stage()).extent(s.bc, d),
                        acc: sref(),
                        accumulate: true,
                        transpose_b: true,
                    },
                    Instr::WgmmaWait { pending: 0 },
                    Instr::Simt(SimtOp::Map {
                        op: UnOp::Scale(scale),
                        src: sref(),
                        dst: sref(),
                    }),
                    Instr::Simt(SimtOp::Copy {
                        src: Slice::frag(mfr).extent(wg_rows, 1),
                        dst: Slice::frag(tm).extent(wg_rows, 1),
                    }),
                    Instr::Simt(SimtOp::RowReduce {
                        op: RedOp::Max,
                        src: sref(),
                        dst: Slice::frag(mfr).extent(wg_rows, 1),
                        include_dst: true,
                    }),
                    Instr::Simt(SimtOp::Zip {
                        op: BinOp::Sub,
                        a: Slice::frag(tm).extent(wg_rows, 1),
                        b: Slice::frag(mfr).extent(wg_rows, 1),
                        dst: Slice::frag(tm).extent(wg_rows, 1),
                    }),
                    Instr::Simt(SimtOp::Map {
                        op: UnOp::Exp,
                        src: Slice::frag(tm).extent(wg_rows, 1),
                        dst: Slice::frag(tm).extent(wg_rows, 1),
                    }),
                    Instr::Simt(SimtOp::RowZip {
                        op: BinOp::Mul,
                        src: Slice::frag(lfr).extent(wg_rows, 1),
                        row: Slice::frag(tm).extent(wg_rows, 1),
                        dst: Slice::frag(lfr).extent(wg_rows, 1),
                    }),
                    Instr::Simt(SimtOp::RowZip {
                        op: BinOp::Mul,
                        src: Slice::frag(o).extent(wg_rows, d),
                        row: Slice::frag(tm).extent(wg_rows, 1),
                        dst: Slice::frag(o).extent(wg_rows, d),
                    }),
                    Instr::Simt(SimtOp::RowZip {
                        op: BinOp::Sub,
                        src: sref(),
                        row: Slice::frag(mfr).extent(wg_rows, 1),
                        dst: sref(),
                    }),
                    Instr::Simt(SimtOp::Map {
                        op: UnOp::Exp,
                        src: sref(),
                        dst: sref(),
                    }),
                    Instr::Simt(SimtOp::RowReduce {
                        op: RedOp::Sum,
                        src: sref(),
                        dst: Slice::frag(lfr).extent(wg_rows, 1),
                        include_dst: true,
                    }),
                    Instr::MbarWait { bar: pv_bar },
                    Instr::Wgmma {
                        a: sref(),
                        b: Slice::smem(sv).stage(stage()).extent(s.bc, d),
                        acc: Slice::frag(o).extent(wg_rows, d),
                        accumulate: true,
                        transpose_b: false,
                    },
                ];
                if s.bulk_sync {
                    // Triton separates GEMM and reduction phases block-wide.
                    v.insert(5, Instr::Syncthreads);
                }
                v
            };

        let mut per_item = vec![
            Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(o).extent(wg_rows, d),
                value: 0.0,
            }),
            Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(mfr).extent(wg_rows, 1),
                value: -30000.0,
            }),
            Instr::Simt(SimtOp::Fill {
                dst: Slice::frag(lfr).extent(wg_rows, 1),
                value: 0.0,
            }),
        ];
        if s.bulk_sync && wg == 0 {
            per_item.push(Instr::CpAsyncLoad {
                src: Slice::param(gq).at(q_row(), 0).extent(s.br, d),
                dst: Slice::smem(sq).extent(s.br, d),
                bar: prod_q,
            });
        }
        per_item.push(Instr::MbarWait { bar: prod_q });

        let mut kv_body = Vec::new();
        if s.bulk_sync && wg == 0 {
            kv_body.push(Instr::WgmmaWait { pending: 0 });
            kv_body.extend(loads(j0(), true));
        }
        if s.pingpong {
            // Issue both QK^T GEMMs before either softmax. The first
            // group-wait retires only the first GEMM; the second overlaps
            // with the first softmax.
            let pre = vec![
                Instr::MbarWait { bar: prod_k0 },
                Instr::Simt(SimtOp::Fill {
                    dst: Slice::frag(s0).extent(wg_rows, s.bc),
                    value: 0.0,
                }),
                Instr::Wgmma {
                    a: Slice::smem(sq).at(row0, 0).extent(wg_rows, d),
                    b: Slice::smem(sk0).stage(stage()).extent(s.bc, d),
                    acc: Slice::frag(s0).extent(wg_rows, s.bc),
                    accumulate: true,
                    transpose_b: true,
                },
                Instr::MbarWait {
                    bar: prod_k1.expect("pp"),
                },
                Instr::Simt(SimtOp::Fill {
                    dst: Slice::frag(s1.expect("pp")).extent(wg_rows, s.bc),
                    value: 0.0,
                }),
                Instr::Wgmma {
                    a: Slice::smem(sq).at(row0, 0).extent(wg_rows, d),
                    b: Slice::smem(sk1.expect("pp")).stage(stage()).extent(s.bc, d),
                    acc: Slice::frag(s1.expect("pp")).extent(wg_rows, s.bc),
                    accumulate: true,
                    transpose_b: true,
                },
                Instr::WgmmaWait { pending: 1 },
            ];
            kv_body.extend(pre);
            // Softmax + PV for tile 0 (skip the QK part of the helper by
            // reusing only its tail): build explicitly.
            let mut tail0 = softmax_pv(s0, sk0, sv0, prod_k0, prod_v0);
            // Drop the leading wait/fill/gemm/wait (already issued).
            tail0.drain(0..4);
            kv_body.extend(tail0);
            let mut tail1 = softmax_pv(
                s1.expect("pp"),
                sk1.expect("pp"),
                sv1.expect("pp"),
                prod_k1.expect("pp"),
                prod_v1.expect("pp"),
            );
            tail1.drain(0..4);
            kv_body.push(Instr::WgmmaWait { pending: 0 });
            kv_body.extend(tail1);
        } else {
            kv_body.extend(softmax_pv(s0, sk0, sv0, prod_k0, prod_v0));
        }
        kv_body.push(Instr::WgmmaWait { pending: 0 });
        kv_body.push(Instr::MbarArrive { bar: cons });
        if s.bulk_sync {
            kv_body.push(Instr::Syncthreads);
        }
        per_item.push(Instr::Loop {
            var: jvar,
            count: Expr::lit(tiles_per_band as i64),
            body: kv_body,
        });

        // Epilogue: O /= l, stage, store.
        per_item.push(Instr::Simt(SimtOp::RowZip {
            op: BinOp::Div,
            src: Slice::frag(o).extent(wg_rows, d),
            row: Slice::frag(lfr).extent(wg_rows, 1),
            dst: Slice::frag(o).extent(wg_rows, d),
        }));
        per_item.push(Instr::Simt(SimtOp::Copy {
            src: Slice::frag(o).extent(wg_rows, d),
            dst: Slice::smem(so).at(row0, 0).extent(wg_rows, d),
        }));
        if s.bulk_sync {
            per_item.push(Instr::Syncthreads);
            if wg == 0 {
                per_item.push(Instr::TmaStore {
                    src: Slice::smem(so).extent(s.br, d),
                    dst: Slice::param(go).at(q_row(), 0).extent(s.br, d),
                });
                per_item.push(Instr::TmaStoreWait);
            }
        } else {
            per_item.push(Instr::MbarArrive { bar: copyout });
        }

        let guarded = if s.persistent {
            vec![Instr::If {
                cond: Cond::Lt(wid(), Expr::lit(total_work as i64)),
                then_: per_item,
                else_: vec![],
            }]
        } else {
            per_item
        };
        b.role(
            RoleKind::Compute(wg),
            vec![Instr::Loop {
                var: wvar,
                count: Expr::lit(work_per_cta as i64),
                body: guarded,
            }],
        );
    }
    let mut kernel = b.build();
    kernel.persistent = s.persistent;
    kernel
}
