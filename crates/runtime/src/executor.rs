//! Graph execution over the simulator: serial walks and multi-stream
//! concurrent schedules.
//!
//! The executor launches each node's compiled kernel on
//! [`cypress_sim::Simulator`]. In **functional** mode it threads real
//! tensors along the graph's tensor-buffer edges — the output buffers of
//! one launch become the input buffers of the next — recycling dead
//! intermediates through the [`BufferPool`]. Data always moves in the
//! deterministic topological schedule, so functional results are
//! bit-identical across policies — and across worker counts: with
//! host parallelism above 1 each ready wave of nodes runs concurrently
//! on [`cypress_sim::par`]'s scoped pool, with inputs materialized and
//! results joined serially in ascending node order. In **timing** mode
//! no data moves;
//! per-node [`cypress_sim::TimingReport`]s are assembled into a
//! [`GraphReport`] according to the session's
//! [`crate::SchedulePolicy`]:
//!
//! - **Serial**: nodes run back-to-back in schedule order; the makespan
//!   is the sum of the launches (the pre-stream behavior, bit for bit).
//! - **Concurrent**: a ready-queue scheduler assigns independent nodes to
//!   a configurable number of simulated streams. Co-resident launches
//!   contend for SMs, L2, and HBM through
//!   [`cypress_sim::concurrent::ConcurrentEngine`]; dependents are
//!   released as upstream launches retire. Ready nodes and free streams
//!   are taken lowest-id-first, so schedules stay deterministic.

use crate::error::RuntimeError;
use crate::graph::{Binding, NodeId, TaskGraph};
use crate::pool::BufferPool;
use crate::report::{GraphReport, NodeTiming, Recovery};
use crate::session::{FaultPolicy, SchedulePolicy};
use crate::telemetry::{Event, Recorder};
use cypress_core::kernels::comm;
use cypress_core::Compiled;
use cypress_sim::concurrent::{ConcurrentEngine, EngineStep, KernelProfile, LaunchOutcome};
use cypress_sim::{ApplyBytes, FaultPlan, MachineConfig, Simulator, TimingReport, Topology};
use cypress_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// The fault-handling settings one graph launch runs under: the
/// session's injected [`FaultPlan`], its [`FaultPolicy`], and the
/// optional per-node / whole-graph deadlines. An inactive context (no
/// plan, no deadlines — the default) leaves every schedule bit-identical
/// to the pre-fault runtime.
#[derive(Debug, Clone, Default)]
pub(crate) struct FaultContext {
    /// Faults to inject into the concurrent engine (`None` or an empty
    /// plan injects nothing).
    pub plan: Option<FaultPlan>,
    /// How the scheduler reacts to injected faults.
    pub policy: FaultPolicy,
    /// Max cycles from a node's first launch to its successful
    /// retirement before the schedule aborts with
    /// [`RuntimeError::DeadlineExceeded`].
    pub node_deadline: Option<f64>,
    /// Max makespan in cycles before the schedule aborts.
    pub graph_deadline: Option<f64>,
}

impl FaultContext {
    /// A context that injects nothing and checks nothing.
    pub(crate) fn inactive() -> Self {
        FaultContext::default()
    }

    /// `true` when the context carries faults to inject (a non-empty
    /// plan) — what routes a serial-policy launch through the engine.
    fn has_plan(&self) -> bool {
        self.plan.as_ref().is_some_and(|p| !p.is_empty())
    }
}

/// How a fault-aware schedule ended early (converted to a typed
/// [`RuntimeError`] carrying the partial report by `assemble_report`).
enum FaultAbort {
    NodeFailed {
        node: String,
        device: usize,
        attempts: u32,
    },
    DeviceLost {
        device: usize,
        cycle: f64,
    },
    Deadline {
        what: String,
        deadline: f64,
        at: f64,
    },
}

/// What the fault-aware concurrent scheduler produced.
struct Sched {
    nodes: Vec<NodeTiming>,
    makespan: f64,
    recovery: Recovery,
    events: Vec<Event>,
    abort: Option<FaultAbort>,
}

/// A synthetic transfer the fault layer inserted after a device loss to
/// drain a stranded buffer onto a surviving device. Lives only inside
/// one schedule; its id is `graph.len() + index`.
struct RecoveryXfer {
    name: String,
    link: usize,
    demand: f64,
    report: TimingReport,
}

/// One node's compiled kernel plus the mapping annotation the session
/// chose for it (the label and its solo speedup over the default
/// mapping), threaded into the [`NodeTiming`] entries of the report.
#[derive(Debug, Clone)]
pub(crate) struct NodeLaunch {
    /// The compiled kernel to launch.
    pub compiled: Arc<Compiled>,
    /// Mapping label (`"default"` or the tuned candidate's label).
    pub mapping: String,
    /// Solo-cycle speedup over the default mapping (1.0 untuned).
    pub tuned_speedup: f64,
    /// Original node names this launch replaced when it came from the
    /// fusion rewriter (empty for ordinary nodes).
    pub replaced: Vec<String>,
    /// Device this launch runs on (0 unless the graph was sharded).
    pub device: usize,
    /// The link transfer this launch performs when it is a
    /// sharder-inserted communication node (`None` for compute nodes).
    pub comm: Option<CommLaunch>,
}

/// A communication launch's link accounting: the concurrent scheduler
/// charges it to this link's bandwidth instead of any device's SMs, and
/// both timing paths price it with [`cypress_sim::Link::transfer_cycles`]
/// so serial and concurrent schedules agree on its cost.
#[derive(Debug, Clone)]
pub(crate) struct CommLaunch {
    /// Index into the topology's links.
    pub link: usize,
    /// Bytes moved across the link.
    pub bytes: f64,
}

/// The link-derived [`TimingReport`] of a communication launch: a
/// transfer is priced by its link (launch overhead + latency + bytes at
/// link bandwidth), not by simulating the copy kernel on an SM — the
/// copy kernel still runs for real in functional mode, this report only
/// feeds the timeline.
fn comm_report(
    kernel: &str,
    comm: &CommLaunch,
    topology: &Topology,
    machine: &MachineConfig,
) -> TimingReport {
    let cycles = match topology.links.get(comm.link) {
        Some(link) => link.transfer_cycles(comm.bytes, machine),
        // No links in the topology (a degenerate sharded launch on one
        // device): the transfer collapses to its launch overhead.
        None => machine.kernel_launch_cycles,
    };
    TimingReport {
        kernel: kernel.to_string(),
        cycles,
        seconds: machine.cycles_to_seconds(cycles),
        tc_flops: 0.0,
        simt_flops: 0.0,
        achieved_tflops: 0.0,
        tc_utilization: 0.0,
        tma_utilization: 0.0,
        simt_utilization: 0.0,
        ctas: 0,
        simulated_ctas: 0,
        active_sms: 0,
        ctas_per_sm: 0,
        load_bytes: comm.bytes,
        store_bytes: comm.bytes,
        l2_hit: 0.0,
        events: 1,
    }
}

/// The result of a functional graph launch: final parameter tensors of
/// every retained node plus the timing report of the simulated schedule.
#[derive(Debug)]
pub struct GraphRun {
    names: Vec<String>,
    /// Per node: final parameter tensors in declaration order (`None` for
    /// nodes whose buffers were recycled into the pool).
    results: Vec<Option<Vec<Option<Tensor>>>>,
    /// Whole-graph timing of the same schedule.
    pub report: GraphReport,
    /// Per-dtype bytes the functional data path moved across every node
    /// launch of this run — a deterministic function of the graph and
    /// its kernels, bit-identical across policies and worker counts.
    pub apply_bytes: ApplyBytes,
}

impl GraphRun {
    /// The final tensor of `param` of node `id`, if retained.
    #[must_use]
    pub fn tensor(&self, id: NodeId, param: usize) -> Option<&Tensor> {
        self.results.get(id.index())?.as_ref()?.get(param)?.as_ref()
    }

    /// Like [`GraphRun::tensor`], addressing the node by name.
    #[must_use]
    pub fn tensor_of(&self, node: &str, param: usize) -> Option<&Tensor> {
        let idx = self.names.iter().position(|n| n == node)?;
        self.tensor(NodeId(idx), param)
    }

    /// Move the final tensor of `(id, param)` out of the run.
    #[must_use]
    pub fn take_tensor(&mut self, id: NodeId, param: usize) -> Option<Tensor> {
        self.results
            .get_mut(id.index())?
            .as_mut()?
            .get_mut(param)?
            .take()
    }
}

/// `true` if `node`'s buffers survive the launch: sinks (nothing consumes
/// them) and explicitly retained nodes.
fn keeps_buffers(graph: &TaskGraph, node: usize, total_consumers: &[usize]) -> bool {
    graph.nodes()[node].retain || total_consumers[node] == 0
}

/// Tensor-buffer edge bookkeeping shared by the serial and parallel
/// functional walks: which producer slots still have pending consumers,
/// when a buffer's last use lets it move instead of clone, and when a
/// drained producer's buffers recycle into the pool.
struct EdgeBuffers {
    /// Pending consumers per `(node, param)`.
    per_param: Vec<Vec<usize>>,
    /// Total consumers each node started with.
    total_initial: Vec<usize>,
    /// Total consumers each node still has.
    total_remaining: Vec<usize>,
    /// Produced tensors per node (`None` until the node ran, entries
    /// taken by last uses or recycled into the pool).
    slots: Vec<Option<Vec<Option<Tensor>>>>,
}

impl EdgeBuffers {
    fn new(graph: &TaskGraph) -> Self {
        let per_param = graph.consumer_counts();
        let total_initial: Vec<usize> = per_param.iter().map(|c| c.iter().sum()).collect();
        EdgeBuffers {
            total_remaining: total_initial.clone(),
            per_param,
            total_initial,
            slots: vec![None; graph.len()],
        }
    }

    /// Assemble the launch-parameter tensors of `id` from its bindings:
    /// externals are validated and cloned, upstream buffers are moved on
    /// their last use and cloned otherwise, `Zeros` come from the pool.
    fn materialize(
        &mut self,
        graph: &TaskGraph,
        id: NodeId,
        inputs: &HashMap<String, Tensor>,
        pool: &mut BufferPool,
        recorder: &mut dyn Recorder,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let node = &graph.nodes()[id.index()];
        let mut params = Vec::with_capacity(node.bindings.len());
        for (i, binding) in node.bindings.iter().enumerate() {
            let arg = &node.program.args[i];
            let tensor = match binding {
                Binding::External(name) => {
                    let t = inputs
                        .get(name)
                        .ok_or_else(|| RuntimeError::MissingInput { name: name.clone() })?;
                    if t.shape() != [arg.rows, arg.cols] {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has shape {:?}, parameter `{}` of `{}` needs {}x{}",
                                t.shape(),
                                arg.name,
                                node.name,
                                arg.rows,
                                arg.cols
                            ),
                        });
                    }
                    if t.dtype() != arg.dtype {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has dtype {:?}, parameter `{}` of `{}` is {:?}",
                                t.dtype(),
                                arg.name,
                                node.name,
                                arg.dtype
                            ),
                        });
                    }
                    t.clone()
                }
                Binding::Output { node: src, param } => {
                    self.per_param[src.0][*param] -= 1;
                    self.total_remaining[src.0] -= 1;
                    let missing = || RuntimeError::Internal {
                        what: format!(
                            "edge buffer ({}, {param}) was not produced before its consumer \
                             (the schedule is topological, so this is a runtime bug)",
                            src.0
                        ),
                    };
                    let slot = self.slots[src.0]
                        .as_mut()
                        .and_then(|s| s.get_mut(*param))
                        .ok_or_else(missing)?;
                    let last_use = self.per_param[src.0][*param] == 0
                        && !keeps_buffers(graph, src.0, &self.total_initial);
                    if last_use {
                        slot.take().ok_or_else(missing)?
                    } else {
                        slot.as_ref().ok_or_else(missing)?.clone()
                    }
                }
                Binding::Zeros => {
                    // The reuse flag comes from the pool's own counter
                    // delta, so the event agrees with `PoolStats`.
                    let before = recorder.enabled().then(|| pool.stats());
                    let t = pool.acquire(arg.dtype, arg.rows, arg.cols);
                    if let Some(before) = before {
                        recorder.record(Event::PoolAcquire {
                            dtype: arg.dtype,
                            rows: arg.rows,
                            cols: arg.cols,
                            reused: pool.stats().reused > before.reused,
                        });
                    }
                    t
                }
            };
            params.push(tensor);
        }
        Ok(params)
    }

    /// Record the tensors `id` produced.
    fn store(&mut self, id: NodeId, tensors: Vec<Tensor>) {
        self.slots[id.index()] = Some(tensors.into_iter().map(Some).collect());
    }

    /// Recycle any producer that `id` (just finished) drained.
    fn recycle_drained(
        &mut self,
        graph: &TaskGraph,
        id: NodeId,
        pool: &mut BufferPool,
        recorder: &mut dyn Recorder,
    ) {
        for dep in graph.dependencies(id) {
            if self.total_remaining[dep.0] == 0 && !keeps_buffers(graph, dep.0, &self.total_initial)
            {
                if let Some(rest) = self.slots[dep.0].take() {
                    for t in rest.into_iter().flatten() {
                        let before = recorder.enabled().then(|| pool.stats());
                        let dtype = t.dtype();
                        let elements = t.shape().iter().product();
                        pool.release(t);
                        if let Some(before) = before {
                            recorder.record(Event::PoolRelease {
                                dtype,
                                elements,
                                evictions: pool.stats().evicted - before.evicted,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// `launches` is indexed by `NodeId::index()` (one entry per graph node).
/// With `parallelism <= 1` nodes run one at a time in the deterministic
/// topological schedule — the pre-parallel behavior, byte for byte. With
/// more workers, each *ready wave* of nodes (all dependencies satisfied)
/// runs concurrently on the scoped worker pool; inputs are materialized
/// and results joined serially in ascending node order. Each launch is a
/// deterministic function of its input tensors (and pooled buffers are
/// handed out zeroed), so tensors and reports are bit-identical at every
/// parallelism level — only wall time changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_functional(
    simulator: &Simulator,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    inputs: &HashMap<String, Tensor>,
    pool: &mut BufferPool,
    policy: SchedulePolicy,
    parallelism: usize,
    fault: &FaultContext,
    recorder: &mut dyn Recorder,
) -> Result<GraphRun, RuntimeError> {
    let mut edges = EdgeBuffers::new(graph);
    let mut reports: Vec<Option<TimingReport>> = vec![None; graph.len()];
    let mut apply_bytes = ApplyBytes::default();

    if parallelism <= 1 {
        for &id in &graph.schedule() {
            let params = edges.materialize(graph, id, inputs, pool, recorder)?;
            let compiled = &launches[id.index()].compiled;
            let run =
                simulator.run_functional_lowered(&compiled.kernel, &compiled.lowered, params)?;
            apply_bytes.merge(run.apply_bytes);
            reports[id.index()] = Some(run.report);
            edges.store(id, run.params);
            edges.recycle_drained(graph, id, pool, recorder);
        }
    } else {
        let (mut indegree, consumers) = graph.dependency_edges();
        let mut wave: Vec<usize> = (0..graph.len()).filter(|&i| indegree[i] == 0).collect();
        let mut wave_index = 0usize;
        while !wave.is_empty() {
            if recorder.enabled() {
                recorder.record(Event::WaveScheduled {
                    wave: wave_index,
                    nodes: wave.clone(),
                });
            }
            wave_index += 1;
            // Materialize inputs serially in ascending node order (the
            // take-vs-clone bookkeeping is order-sensitive), then run the
            // whole wave on the worker pool.
            let mut jobs = Vec::with_capacity(wave.len());
            for &idx in &wave {
                let id = NodeId(idx);
                let params = edges.materialize(graph, id, inputs, pool, recorder)?;
                jobs.push((idx, Arc::clone(&launches[idx].compiled), params));
            }
            let runs = cypress_sim::par::parallel_map(
                parallelism,
                jobs,
                |(idx, compiled, params): (usize, Arc<Compiled>, Vec<Tensor>)| {
                    (
                        idx,
                        simulator.run_functional_lowered(
                            &compiled.kernel,
                            &compiled.lowered,
                            params,
                        ),
                    )
                },
            );
            // Join in input (ascending node) order; the byte counters
            // are commutative sums, so the merged totals match the
            // serial walk exactly.
            for (idx, run) in runs {
                let run = run?;
                apply_bytes.merge(run.apply_bytes);
                reports[idx] = Some(run.report);
                edges.store(NodeId(idx), run.params);
            }
            for &idx in &wave {
                edges.recycle_drained(graph, NodeId(idx), pool, recorder);
            }
            let mut next = Vec::new();
            for &idx in &wave {
                for &c in &consumers[idx] {
                    indegree[c] -= 1;
                    if indegree[c] == 0 {
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            wave = next;
        }
    }

    let mut reports: Vec<TimingReport> = reports
        .into_iter()
        .map(|r| {
            r.ok_or_else(|| RuntimeError::Internal {
                what: "a scheduled node never ran (the schedule is topological, so this is a \
                       runtime bug)"
                    .into(),
            })
        })
        .collect::<Result<_, _>>()?;
    // Communication launches are priced by their link, not by the solo
    // simulation of the copy kernel (which already moved the data above).
    for (i, launch) in launches.iter().enumerate() {
        if let Some(comm) = &launch.comm {
            reports[i] = comm_report(
                &launch.compiled.kernel.name,
                comm,
                topology,
                simulator.machine(),
            );
        }
    }
    let report = match assemble_report(
        simulator.machine(),
        topology,
        graph,
        launches,
        &reports,
        policy,
        fault,
        recorder,
    ) {
        Ok(report) => report,
        Err(e) => {
            // The schedule aborted (fail-fast fault, exhausted retry
            // budget, blown deadline): every buffer the functional walk
            // produced goes back into the pool so a long-lived session
            // leaks nothing across failed launches.
            for slot in edges.slots.drain(..).flatten() {
                for t in slot.into_iter().flatten() {
                    pool.release(t);
                }
            }
            return Err(e);
        }
    };
    record_graph_events(graph, launches, &reports, &report, recorder);
    Ok(GraphRun {
        names: graph.nodes().iter().map(|n| n.name.clone()).collect(),
        results: edges.slots,
        report,
        apply_bytes,
    })
}

/// Emit the per-node events of one graph run: first the policy-invariant
/// [`Event::NodeExecuted`] stream in ascending node-id (insertion)
/// order, then the schedule's [`Event::NodeSpan`] timeline in completion
/// order (see [`GraphReport::trace_events`]). Both the serial walk and
/// the wave executor land here with `reports` indexed by node id, so the
/// emitted stream is independent of how the nodes actually ran.
fn record_graph_events(
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    report: &GraphReport,
    recorder: &mut dyn Recorder,
) {
    if !recorder.enabled() {
        return;
    }
    for (i, node) in graph.nodes().iter().enumerate() {
        recorder.record(Event::NodeExecuted {
            node: node.name.clone(),
            kernel: launches[i].compiled.kernel.name.clone(),
            cycles: reports[i].cycles,
        });
    }
    for ev in report.trace_events() {
        recorder.record(ev);
    }
}

/// Re-address a rewritten graph's [`GraphRun`] to the *original* graph:
/// the result's node ids and names are the original ones, each
/// parameter's tensor pulled from wherever `target` placed its buffer
/// (a [`crate::fuse::FusionPlan::target`] or
/// [`crate::shard::ShardPlan::target`]), while the timing report keeps
/// the rewritten launches (with their `replaced` annotations) so the
/// timeline shows what actually ran.
pub(crate) fn remap_run(
    run: GraphRun,
    original: &TaskGraph,
    target: &dyn Fn(usize, usize) -> Option<(usize, usize)>,
) -> GraphRun {
    // Clone rather than move: several original slots can share one
    // rewritten buffer (two fused members reading the same operand).
    let rewritten_results = run.results;
    let results = original
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let params: Vec<Option<Tensor>> = (0..node.program.args.len())
                .map(|p| {
                    let (fi, fp) = target(i, p)?;
                    rewritten_results.get(fi)?.as_ref()?.get(fp)?.clone()
                })
                .collect();
            params.iter().any(Option::is_some).then_some(params)
        })
        .collect();
    GraphRun {
        names: original.nodes().iter().map(|n| n.name.clone()).collect(),
        results,
        report: run.report,
        apply_bytes: run.apply_bytes,
    }
}

/// `launches` is indexed by `NodeId::index()` (one entry per graph node).
pub(crate) fn run_timing(
    simulator: &Simulator,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    policy: SchedulePolicy,
    fault: &FaultContext,
    recorder: &mut dyn Recorder,
) -> Result<GraphReport, RuntimeError> {
    // Solo-time each node once per distinct compiled kernel: graphs that
    // repeat a program (the cache hands back the identical `Arc`) pay for
    // one simulation, not one per node. Communication launches skip the
    // simulator entirely — their cost is link-derived.
    let mut by_kernel: HashMap<*const Compiled, TimingReport> = HashMap::new();
    let mut reports = Vec::with_capacity(graph.len());
    for launch in launches {
        if let Some(comm) = &launch.comm {
            reports.push(comm_report(
                &launch.compiled.kernel.name,
                comm,
                topology,
                simulator.machine(),
            ));
            continue;
        }
        let key = Arc::as_ptr(&launch.compiled);
        let report = match by_kernel.get(&key) {
            Some(r) => r.clone(),
            None => {
                let r = simulator
                    .run_timing_lowered(&launch.compiled.kernel, &launch.compiled.lowered)?;
                by_kernel.insert(key, r.clone());
                r
            }
        };
        reports.push(report);
    }
    let report = assemble_report(
        simulator.machine(),
        topology,
        graph,
        launches,
        &reports,
        policy,
        fault,
        recorder,
    )?;
    record_graph_events(graph, launches, &reports, &report, recorder);
    Ok(report)
}

/// Assemble the whole-graph report from per-node solo reports (indexed by
/// `NodeId::index()`) under `policy`, injecting and recovering from the
/// fault context's plan. A schedule that ended early — a fail-fast
/// fault, an exhausted retry budget, a device loss with no survivor, a
/// blown deadline — comes back as the matching typed [`RuntimeError`]
/// carrying the partial report.
#[allow(clippy::too_many_arguments)]
fn assemble_report(
    machine: &MachineConfig,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    policy: SchedulePolicy,
    fault: &FaultContext,
    recorder: &mut dyn Recorder,
) -> Result<GraphReport, RuntimeError> {
    let schedule = graph.schedule();
    // A non-empty fault plan routes even serial-policy launches through
    // the engine (with one stream per device) — the serial walk has no
    // notion of in-flight launches to kill or retry. With an empty plan
    // the serial walk runs untouched, bit for bit.
    let use_engine = matches!(policy, SchedulePolicy::Concurrent { .. }) || fault.has_plan();
    let (nodes, makespan, recovery, events, abort) = if use_engine {
        let sched =
            schedule_concurrent(topology, graph, launches, reports, policy.streams(), fault)?;
        let mut recovery = sched.recovery;
        if recovery.faults > 0 && sched.abort.is_none() {
            // Recovery overhead: the faulted makespan over a clean run
            // of the same launches through the same engine (same policy,
            // same streams), so the delta isolates the faults.
            let clean = schedule_concurrent(
                topology,
                graph,
                launches,
                reports,
                policy.streams(),
                &FaultContext::inactive(),
            )?;
            recovery.overhead_cycles = sched.makespan - clean.makespan;
        }
        (
            sched.nodes,
            sched.makespan,
            recovery,
            sched.events,
            sched.abort,
        )
    } else {
        let (mut nodes, mut makespan) = schedule_serial(graph, launches, &schedule, reports);
        // The serial walk can still miss deadlines; check post hoc so
        // the walk itself stays byte-identical to the pre-fault runtime.
        // Like the engine path, the report is truncated at the first
        // offending span so the error carries a genuinely partial
        // timeline.
        let mut abort = None;
        if let Some(nd) = fault.node_deadline {
            if let Some(pos) = nodes.iter().position(|t| t.end - t.start > nd) {
                let at = nodes[pos].end;
                abort = Some(FaultAbort::Deadline {
                    what: nodes[pos].node.clone(),
                    deadline: nd,
                    at,
                });
                nodes.truncate(pos + 1);
                makespan = at;
            }
        }
        if abort.is_none() {
            if let Some(gd) = fault.graph_deadline {
                if let Some(pos) = nodes.iter().position(|t| t.end > gd) {
                    let at = nodes[pos].end;
                    abort = Some(FaultAbort::Deadline {
                        what: "graph".to_string(),
                        deadline: gd,
                        at,
                    });
                    nodes.truncate(pos + 1);
                    makespan = at;
                }
            }
        }
        (nodes, makespan, Recovery::default(), Vec::new(), abort)
    };
    if recorder.enabled() {
        for ev in &events {
            recorder.record(ev.clone());
        }
    }
    let report = GraphReport {
        nodes,
        makespan,
        seconds: machine.cycles_to_seconds(makespan),
        critical_path: critical_path(graph, &schedule, reports),
        streams: policy.streams(),
        devices: topology.device_count(),
        recovery,
    };
    match abort {
        None => Ok(report),
        Some(FaultAbort::NodeFailed {
            node,
            device,
            attempts,
        }) => Err(RuntimeError::NodeFailed {
            node,
            device,
            attempts,
            report: Box::new(report),
        }),
        Some(FaultAbort::DeviceLost { device, cycle }) => Err(RuntimeError::DeviceLost {
            device,
            cycle,
            report: Box::new(report),
        }),
        Some(FaultAbort::Deadline { what, deadline, at }) => Err(RuntimeError::DeadlineExceeded {
            what,
            deadline,
            at,
            report: Box::new(report),
        }),
    }
}

/// The longest dependency chain of solo node makespans: the lower bound
/// no schedule can beat.
fn critical_path(graph: &TaskGraph, schedule: &[NodeId], reports: &[TimingReport]) -> f64 {
    let mut longest = vec![0.0f64; graph.len()];
    let mut best = 0.0f64;
    for &id in schedule {
        let mut upstream = 0.0f64;
        for dep in graph.dependencies(id) {
            upstream = upstream.max(longest[dep.0]);
        }
        longest[id.index()] = upstream + reports[id.index()].cycles;
        best = best.max(longest[id.index()]);
    }
    best
}

/// Back-to-back launches in schedule order — the pre-stream behavior:
/// the makespan is the running sum of the solo makespans.
fn schedule_serial(
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    schedule: &[NodeId],
    reports: &[TimingReport],
) -> (Vec<NodeTiming>, f64) {
    let mut nodes = Vec::with_capacity(graph.len());
    let mut cursor = 0.0f64;
    for &id in schedule {
        let report = reports[id.index()].clone();
        let start = cursor;
        cursor += report.cycles;
        nodes.push(NodeTiming {
            node: graph.nodes()[id.index()].name.clone(),
            device: launches[id.index()].device,
            stream: 0,
            start,
            end: cursor,
            mapping: launches[id.index()].mapping.clone(),
            tuned_speedup: launches[id.index()].tuned_speedup,
            replaced: launches[id.index()].replaced.clone(),
            report,
        });
    }
    (nodes, cursor)
}

/// Price a transfer from `src` to `dst`: over the connecting link when
/// one exists, collapsing to launch overhead (and zero link demand) when
/// the endpoints are co-located or unlinked. Returns the link index to
/// charge, the fluid demand, and the link-derived [`TimingReport`].
fn route_transfer(
    kernel: &str,
    bytes: f64,
    src: usize,
    dst: usize,
    topology: &Topology,
    machine: &MachineConfig,
) -> (usize, f64, TimingReport) {
    match topology.link_between(src, dst) {
        Some(link) if src != dst => {
            let report = comm_report(kernel, &CommLaunch { link, bytes }, topology, machine);
            let demand = bytes / report.cycles.max(1.0);
            (link, demand, report)
        }
        // Co-located after a re-shard glue (or no link): the copy
        // collapses to its launch overhead and draws no link bandwidth.
        _ => {
            let report = comm_report(
                kernel,
                &CommLaunch {
                    link: usize::MAX,
                    bytes,
                },
                topology,
                machine,
            );
            (0, 0.0, report)
        }
    }
}

/// The producing node behind a communication launch (its single
/// `Output` binding), if any.
fn producer_of(graph: &TaskGraph, node: usize) -> Option<usize> {
    graph.nodes()[node].bindings.iter().find_map(|b| match b {
        Binding::Output { node: src, .. } => Some(src.index()),
        _ => None,
    })
}

/// The zero-cost [`TimingReport`] behind a schedule marker span (the
/// `reshard:` boundary the fault layer draws on the timeline).
fn marker_report(kernel: &str) -> TimingReport {
    TimingReport {
        kernel: kernel.to_string(),
        cycles: 0.0,
        seconds: 0.0,
        tc_flops: 0.0,
        simt_flops: 0.0,
        achieved_tflops: 0.0,
        tc_utilization: 0.0,
        tma_utilization: 0.0,
        simt_utilization: 0.0,
        ctas: 0,
        simulated_ctas: 0,
        active_sms: 0,
        ctas_per_sm: 0,
        load_bytes: 0.0,
        store_bytes: 0.0,
        l2_hit: 0.0,
        events: 0,
    }
}

/// Ready-queue scheduling onto `streams` simulated streams *per device*:
/// independent nodes launch as soon as a stream on their device is free,
/// co-resident launches contend for their own device's SMs/L2/HBM
/// through the fluid [`ConcurrentEngine`] (kernels on different devices
/// only meet on links), and communication launches draw on their link's
/// bandwidth instead. Dependents are released as upstream launches
/// retire. Ready nodes and free streams are both taken lowest-id-first;
/// at one device this reduces bit-for-bit to the single-device
/// scheduler.
///
/// With an active [`FaultContext`] the same loop also absorbs injected
/// faults: transient launch failures show up as `retry:`-prefixed spans
/// and re-execute under [`FaultPolicy::Retry`] (after an optional
/// backoff window); a permanent device loss evicts the device, re-plans
/// its unexecuted nodes onto the survivors
/// (see [`crate::shard::replan`]), re-routes pending transfers, and
/// inserts synthetic `xfer:recover:` transfers that drain stranded
/// buffers over the links. With an inactive context every branch below
/// reduces to the pre-fault scheduler, bit for bit.
#[allow(clippy::too_many_lines)]
fn schedule_concurrent(
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    streams: usize,
    fault: &FaultContext,
) -> Result<Sched, RuntimeError> {
    let n = graph.len();
    let machine = &topology.devices[0];
    let profiles: Vec<KernelProfile> = reports
        .iter()
        .map(|r| KernelProfile::from_report(r, machine))
        .collect();
    let (mut indegree, mut consumers) = graph.dependency_edges();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut free: Vec<Vec<usize>> = vec![(0..streams).collect(); topology.device_count()];
    let mut stream_of = vec![0usize; n];
    // Where each node runs *now* — starts at the shard plan's placement,
    // rewritten by degraded re-sharding after a device loss.
    let mut device_of: Vec<usize> = launches.iter().map(|l| l.device).collect();
    // Device each launch actually went to: streams are freed on the
    // launch device even if the node was re-planned while in flight.
    let mut launched_on = device_of.clone();
    let mut engine = ConcurrentEngine::with_topology(topology);
    if fault.has_plan() {
        if let Some(plan) = &fault.plan {
            engine = engine.with_fault_plan(plan.clone());
        }
    }
    let mut nodes: Vec<NodeTiming> = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    let mut completed = vec![false; n];
    let mut completed_real = 0usize;
    let mut attempts = vec![0u32; n];
    let mut first_start = vec![0.0f64; n];
    // Nodes whose relaunch is held back by a retry backoff window.
    let mut deferred: HashMap<usize, f64> = HashMap::new();
    let mut dead = vec![false; topology.device_count()];
    // Synthetic recovery transfers (ids `n..`) and the edges they cover.
    let mut xfers: Vec<RecoveryXfer> = Vec::new();
    let mut xfer_by_key: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut xfer_links: HashSet<(usize, usize)> = HashSet::new();
    // Communication launches re-routed by a re-shard: node id ->
    // (link, demand, rebuilt link-derived report).
    let mut comm_route: HashMap<usize, (usize, f64, TimingReport)> = HashMap::new();
    let mut recovery = Recovery::default();
    let mut events: Vec<Event> = Vec::new();
    let mut abort: Option<FaultAbort> = None;

    'run: while completed_real < n {
        while let Some(&next) = ready
            .iter()
            .filter(|&&i| {
                !free[device_of[i]].is_empty()
                    && deferred.get(&i).is_none_or(|&t| engine.now() >= t)
            })
            .min()
        {
            ready.retain(|&x| x != next);
            deferred.remove(&next);
            let device = device_of[next];
            let stream = free[device].remove(0);
            stream_of[next] = stream;
            launched_on[next] = device;
            if next >= n {
                let x = &xfers[next - n];
                engine.launch_transfer(next, x.link, x.report.cycles, x.demand);
            } else {
                if attempts[next] == 0 {
                    first_start[next] = engine.now();
                }
                attempts[next] += 1;
                match &launches[next].comm {
                    Some(comm) => match comm_route.get(&next) {
                        Some((link, demand, report)) => {
                            engine.launch_transfer(next, *link, report.cycles, *demand);
                        }
                        None => {
                            // The link-derived solo cycles were already
                            // folded into this node's report; the demand
                            // is the rate a solo transfer sustains, so an
                            // uncontended link reproduces them exactly.
                            let cycles = reports[next].cycles;
                            engine.launch_transfer(
                                next,
                                comm.link,
                                cycles,
                                comm.bytes / cycles.max(1.0),
                            );
                        }
                    },
                    None => engine.launch_on(next, device, &profiles[next]),
                }
            }
        }
        let step = match engine.step() {
            Some(step) => step,
            None => {
                // Idle engine with work left: a retry backoff may be
                // holding everything back — skip the clock to its
                // release. Anything else is a scheduler bug, surfaced
                // typed instead of panicking.
                let release = ready
                    .iter()
                    .filter_map(|i| deferred.get(i).copied())
                    .min_by(f64::total_cmp);
                match release {
                    Some(t) => {
                        engine.skip_to(t);
                        continue 'run;
                    }
                    None => {
                        return Err(RuntimeError::Internal {
                            what: "concurrent scheduler stalled: engine idle with incomplete \
                                   nodes and nothing ready to launch"
                                .into(),
                        })
                    }
                }
            }
        };
        let (done, outcome) = match step {
            EngineStep::Retired {
                completion,
                outcome,
            } => (completion, outcome),
            EngineStep::DeviceEvicted {
                device: dead_dev,
                at,
            } => {
                dead[dead_dev] = true;
                makespan = makespan.max(at);
                recovery.faults += 1;
                recovery.evicted_devices.push(dead_dev);
                events.push(Event::FaultInjected {
                    node: "device".to_string(),
                    device: dead_dev,
                    kind: "device_loss",
                    at,
                });
                events.push(Event::DeviceEvicted {
                    device: dead_dev,
                    at,
                });
                let survivors: Vec<usize> =
                    (0..topology.device_count()).filter(|&d| !dead[d]).collect();
                if matches!(fault.policy, FaultPolicy::FailFast) || survivors.is_empty() {
                    abort = Some(FaultAbort::DeviceLost {
                        device: dead_dev,
                        cycle: at,
                    });
                    break 'run;
                }
                // Zero-length marker span: where the timeline re-shards.
                let marker = format!("reshard:d{dead_dev}");
                nodes.push(NodeTiming {
                    node: marker.clone(),
                    device: dead_dev,
                    stream: 0,
                    start: at,
                    end: at,
                    mapping: "default".to_string(),
                    tuned_speedup: 1.0,
                    replaced: Vec::new(),
                    report: marker_report(&marker),
                });
                // 1. Re-place stranded compute nodes onto the survivors.
                let moved: Vec<usize> = (0..n)
                    .filter(|&i| {
                        !completed[i] && device_of[i] == dead_dev && launches[i].comm.is_none()
                    })
                    .collect();
                let mut moved_names = crate::shard::replan(
                    graph,
                    &mut device_of,
                    &moved,
                    &survivors,
                    topology.device_count(),
                );
                // 2. Stranded communication nodes glue to their first
                //    incomplete consumer's device; every pending
                //    transfer's route is then recomputed against the new
                //    placement.
                for i in 0..n {
                    if completed[i] || launches[i].comm.is_none() {
                        continue;
                    }
                    if device_of[i] == dead_dev {
                        let follow = consumers[i]
                            .iter()
                            .copied()
                            .filter(|&c| c < n && !completed[c])
                            .min();
                        device_of[i] = follow.map_or(survivors[0], |c| device_of[c]);
                        moved_names.push(graph.nodes()[i].name.clone());
                    }
                    let src = producer_of(graph, i).map_or(device_of[i], |p| device_of[p]);
                    let route = route_transfer(
                        &launches[i].compiled.kernel.name,
                        launches[i].comm.as_ref().map_or(0.0, |c| c.bytes),
                        src,
                        device_of[i],
                        topology,
                        machine,
                    );
                    comm_route.insert(i, route);
                }
                // 3. Cover every now-cross-device edge into an incomplete
                //    compute node with a recovery transfer that drains
                //    the producer's buffer onto the consumer's device.
                //    Idempotent across evictions: one transfer per
                //    (producer, param, destination), one extra dependency
                //    per covered consumer.
                let before = xfers.len();
                for c in 0..n {
                    if completed[c] || launches[c].comm.is_some() {
                        continue;
                    }
                    for b in &graph.nodes()[c].bindings {
                        let Binding::Output { node: src, param } = b else {
                            continue;
                        };
                        let (p, param) = (src.index(), *param);
                        if device_of[p] == device_of[c] {
                            continue;
                        }
                        let dst = device_of[c];
                        let key = (p, param, dst);
                        let xid = match xfer_by_key.get(&key).copied() {
                            Some(x) => x,
                            None => {
                                let x = n + xfers.len();
                                let pname = &graph.nodes()[p].name;
                                let name = format!("xfer:recover:{pname}.{param}->d{dst}");
                                let arg = &graph.nodes()[p].program.args[param];
                                let bytes = comm::tensor_bytes(arg.rows, arg.cols);
                                let (link, demand, report) = route_transfer(
                                    &name,
                                    bytes,
                                    device_of[p],
                                    dst,
                                    topology,
                                    machine,
                                );
                                xfers.push(RecoveryXfer {
                                    name,
                                    link,
                                    demand,
                                    report,
                                });
                                device_of.push(dst);
                                launched_on.push(dst);
                                stream_of.push(0);
                                completed.push(false);
                                consumers.push(Vec::new());
                                indegree.push(usize::from(!completed[p]));
                                if completed[p] {
                                    ready.push(x);
                                } else {
                                    consumers[p].push(x);
                                }
                                xfer_by_key.insert(key, x);
                                x
                            }
                        };
                        if completed[xid] {
                            continue; // buffer already drained to `dst`
                        }
                        if xfer_links.insert((xid, c)) {
                            indegree[c] += 1;
                            ready.retain(|&r| r != c);
                            consumers[xid].push(c);
                        }
                    }
                }
                recovery.resharded_nodes.extend(moved_names.iter().cloned());
                events.push(Event::Resharded {
                    device: dead_dev,
                    nodes: moved_names,
                    recovery_transfers: xfers.len() - before,
                });
                continue 'run;
            }
        };
        let device = launched_on[done.id];
        let idx = free[device].partition_point(|&s| s < stream_of[done.id]);
        free[device].insert(idx, stream_of[done.id]);
        // `ConcurrentEngine::step` completions are time-ordered (the
        // engine only moves forward); the makespan still folds with
        // `max` so a violation could never silently shrink it.
        debug_assert!(
            done.end >= makespan,
            "concurrent completions regressed in time: {} after {makespan}",
            done.end
        );
        makespan = makespan.max(done.end);
        match outcome {
            LaunchOutcome::Completed => {
                if done.id >= n {
                    let x = &xfers[done.id - n];
                    nodes.push(NodeTiming {
                        node: x.name.clone(),
                        device,
                        stream: stream_of[done.id],
                        start: done.start,
                        end: done.end,
                        mapping: "default".to_string(),
                        tuned_speedup: 1.0,
                        replaced: Vec::new(),
                        report: x.report.clone(),
                    });
                } else {
                    let report = match comm_route.get(&done.id) {
                        Some((_, _, r)) => r.clone(),
                        None => reports[done.id].clone(),
                    };
                    nodes.push(NodeTiming {
                        node: graph.nodes()[done.id].name.clone(),
                        device,
                        stream: stream_of[done.id],
                        start: done.start,
                        end: done.end,
                        mapping: launches[done.id].mapping.clone(),
                        tuned_speedup: launches[done.id].tuned_speedup,
                        replaced: launches[done.id].replaced.clone(),
                        report,
                    });
                }
                completed[done.id] = true;
                if done.id < n {
                    completed_real += 1;
                }
                for &c in &consumers[done.id] {
                    indegree[c] -= 1;
                    if indegree[c] == 0 {
                        ready.push(c);
                    }
                }
                if done.id < n {
                    if let Some(nd) = fault.node_deadline {
                        if done.end - first_start[done.id] > nd {
                            abort = Some(FaultAbort::Deadline {
                                what: graph.nodes()[done.id].name.clone(),
                                deadline: nd,
                                at: done.end,
                            });
                            break 'run;
                        }
                    }
                }
            }
            LaunchOutcome::TransientFault | LaunchOutcome::DeviceLost => {
                if done.id >= n {
                    return Err(RuntimeError::Internal {
                        what: "a recovery transfer reported a fault outcome".into(),
                    });
                }
                let name = graph.nodes()[done.id].name.clone();
                let report = match comm_route.get(&done.id) {
                    Some((_, _, r)) => r.clone(),
                    None => reports[done.id].clone(),
                };
                nodes.push(NodeTiming {
                    node: format!("retry:{name}"),
                    device,
                    stream: stream_of[done.id],
                    start: done.start,
                    end: done.end,
                    mapping: launches[done.id].mapping.clone(),
                    tuned_speedup: launches[done.id].tuned_speedup,
                    replaced: launches[done.id].replaced.clone(),
                    report,
                });
                if outcome == LaunchOutcome::TransientFault {
                    recovery.faults += 1;
                    events.push(Event::FaultInjected {
                        node: name.clone(),
                        device,
                        kind: "transient",
                        at: done.end,
                    });
                }
                match fault.policy {
                    FaultPolicy::FailFast => {
                        abort = Some(if outcome == LaunchOutcome::DeviceLost {
                            FaultAbort::DeviceLost {
                                device,
                                cycle: done.end,
                            }
                        } else {
                            FaultAbort::NodeFailed {
                                node: name,
                                device,
                                attempts: attempts[done.id],
                            }
                        });
                        break 'run;
                    }
                    FaultPolicy::Retry {
                        max_attempts,
                        backoff,
                    } => {
                        if outcome == LaunchOutcome::TransientFault
                            && attempts[done.id] >= max_attempts.max(1)
                        {
                            abort = Some(FaultAbort::NodeFailed {
                                node: name,
                                device,
                                attempts: attempts[done.id],
                            });
                            break 'run;
                        }
                        recovery.retries += 1;
                        events.push(Event::NodeRetried {
                            node: name,
                            device: device_of[done.id],
                            attempt: attempts[done.id] + 1,
                        });
                        if outcome == LaunchOutcome::TransientFault && backoff > 0.0 {
                            deferred.insert(done.id, done.end + backoff);
                        }
                        if indegree[done.id] == 0 {
                            ready.push(done.id);
                        }
                    }
                }
            }
        }
        if let Some(gd) = fault.graph_deadline {
            if done.end > gd {
                abort = Some(FaultAbort::Deadline {
                    what: "graph".to_string(),
                    deadline: gd,
                    at: done.end,
                });
                break 'run;
            }
        }
    }
    Ok(Sched {
        nodes,
        makespan,
        recovery,
        events,
        abort,
    })
}
