//! Graph execution over the simulator: serial walks and multi-stream
//! concurrent schedules.
//!
//! The executor launches each node's compiled kernel on
//! [`cypress_sim::Simulator`]. In **functional** mode it threads real
//! tensors along the graph's tensor-buffer edges — the output buffers of
//! one launch become the input buffers of the next — recycling dead
//! intermediates through the [`BufferPool`]. Data always moves in the
//! deterministic topological schedule, so functional results are
//! bit-identical across policies — and across worker counts: with
//! host parallelism above 1 each ready wave of nodes runs concurrently
//! on [`cypress_sim::par`]'s scoped pool, with inputs materialized and
//! results joined serially in ascending node order. In **timing** mode
//! no data moves;
//! per-node [`cypress_sim::TimingReport`]s are assembled into a
//! [`GraphReport`] according to the session's
//! [`crate::SchedulePolicy`]:
//!
//! - **Serial**: nodes run back-to-back in schedule order; the makespan
//!   is the sum of the launches (the pre-stream behavior, bit for bit).
//! - **Concurrent**: a ready-queue scheduler assigns independent nodes to
//!   a configurable number of simulated streams. Co-resident launches
//!   contend for SMs, L2, and HBM through
//!   [`cypress_sim::concurrent::ConcurrentEngine`]; dependents are
//!   released as upstream launches retire. Ready nodes and free streams
//!   are taken lowest-id-first, so schedules stay deterministic.

use crate::error::RuntimeError;
use crate::graph::{Binding, NodeId, TaskGraph};
use crate::pool::BufferPool;
use crate::report::{GraphReport, NodeTiming};
use crate::session::SchedulePolicy;
use crate::telemetry::{Event, Recorder};
use cypress_core::Compiled;
use cypress_sim::concurrent::{ConcurrentEngine, KernelProfile};
use cypress_sim::{ApplyBytes, MachineConfig, Simulator, TimingReport, Topology};
use cypress_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// One node's compiled kernel plus the mapping annotation the session
/// chose for it (the label and its solo speedup over the default
/// mapping), threaded into the [`NodeTiming`] entries of the report.
#[derive(Debug, Clone)]
pub(crate) struct NodeLaunch {
    /// The compiled kernel to launch.
    pub compiled: Arc<Compiled>,
    /// Mapping label (`"default"` or the tuned candidate's label).
    pub mapping: String,
    /// Solo-cycle speedup over the default mapping (1.0 untuned).
    pub tuned_speedup: f64,
    /// Original node names this launch replaced when it came from the
    /// fusion rewriter (empty for ordinary nodes).
    pub replaced: Vec<String>,
    /// Device this launch runs on (0 unless the graph was sharded).
    pub device: usize,
    /// The link transfer this launch performs when it is a
    /// sharder-inserted communication node (`None` for compute nodes).
    pub comm: Option<CommLaunch>,
}

/// A communication launch's link accounting: the concurrent scheduler
/// charges it to this link's bandwidth instead of any device's SMs, and
/// both timing paths price it with [`cypress_sim::Link::transfer_cycles`]
/// so serial and concurrent schedules agree on its cost.
#[derive(Debug, Clone)]
pub(crate) struct CommLaunch {
    /// Index into the topology's links.
    pub link: usize,
    /// Bytes moved across the link.
    pub bytes: f64,
}

/// The link-derived [`TimingReport`] of a communication launch: a
/// transfer is priced by its link (launch overhead + latency + bytes at
/// link bandwidth), not by simulating the copy kernel on an SM — the
/// copy kernel still runs for real in functional mode, this report only
/// feeds the timeline.
fn comm_report(
    kernel: &str,
    comm: &CommLaunch,
    topology: &Topology,
    machine: &MachineConfig,
) -> TimingReport {
    let cycles = match topology.links.get(comm.link) {
        Some(link) => link.transfer_cycles(comm.bytes, machine),
        // No links in the topology (a degenerate sharded launch on one
        // device): the transfer collapses to its launch overhead.
        None => machine.kernel_launch_cycles,
    };
    TimingReport {
        kernel: kernel.to_string(),
        cycles,
        seconds: machine.cycles_to_seconds(cycles),
        tc_flops: 0.0,
        simt_flops: 0.0,
        achieved_tflops: 0.0,
        tc_utilization: 0.0,
        tma_utilization: 0.0,
        simt_utilization: 0.0,
        ctas: 0,
        simulated_ctas: 0,
        active_sms: 0,
        ctas_per_sm: 0,
        load_bytes: comm.bytes,
        store_bytes: comm.bytes,
        l2_hit: 0.0,
        events: 1,
    }
}

/// The result of a functional graph launch: final parameter tensors of
/// every retained node plus the timing report of the simulated schedule.
#[derive(Debug)]
pub struct GraphRun {
    names: Vec<String>,
    /// Per node: final parameter tensors in declaration order (`None` for
    /// nodes whose buffers were recycled into the pool).
    results: Vec<Option<Vec<Option<Tensor>>>>,
    /// Whole-graph timing of the same schedule.
    pub report: GraphReport,
    /// Per-dtype bytes the functional data path moved across every node
    /// launch of this run — a deterministic function of the graph and
    /// its kernels, bit-identical across policies and worker counts.
    pub apply_bytes: ApplyBytes,
}

impl GraphRun {
    /// The final tensor of `param` of node `id`, if retained.
    #[must_use]
    pub fn tensor(&self, id: NodeId, param: usize) -> Option<&Tensor> {
        self.results.get(id.index())?.as_ref()?.get(param)?.as_ref()
    }

    /// Like [`GraphRun::tensor`], addressing the node by name.
    #[must_use]
    pub fn tensor_of(&self, node: &str, param: usize) -> Option<&Tensor> {
        let idx = self.names.iter().position(|n| n == node)?;
        self.tensor(NodeId(idx), param)
    }

    /// Move the final tensor of `(id, param)` out of the run.
    #[must_use]
    pub fn take_tensor(&mut self, id: NodeId, param: usize) -> Option<Tensor> {
        self.results
            .get_mut(id.index())?
            .as_mut()?
            .get_mut(param)?
            .take()
    }
}

/// `true` if `node`'s buffers survive the launch: sinks (nothing consumes
/// them) and explicitly retained nodes.
fn keeps_buffers(graph: &TaskGraph, node: usize, total_consumers: &[usize]) -> bool {
    graph.nodes()[node].retain || total_consumers[node] == 0
}

/// Tensor-buffer edge bookkeeping shared by the serial and parallel
/// functional walks: which producer slots still have pending consumers,
/// when a buffer's last use lets it move instead of clone, and when a
/// drained producer's buffers recycle into the pool.
struct EdgeBuffers {
    /// Pending consumers per `(node, param)`.
    per_param: Vec<Vec<usize>>,
    /// Total consumers each node started with.
    total_initial: Vec<usize>,
    /// Total consumers each node still has.
    total_remaining: Vec<usize>,
    /// Produced tensors per node (`None` until the node ran, entries
    /// taken by last uses or recycled into the pool).
    slots: Vec<Option<Vec<Option<Tensor>>>>,
}

impl EdgeBuffers {
    fn new(graph: &TaskGraph) -> Self {
        let per_param = graph.consumer_counts();
        let total_initial: Vec<usize> = per_param.iter().map(|c| c.iter().sum()).collect();
        EdgeBuffers {
            total_remaining: total_initial.clone(),
            per_param,
            total_initial,
            slots: vec![None; graph.len()],
        }
    }

    /// Assemble the launch-parameter tensors of `id` from its bindings:
    /// externals are validated and cloned, upstream buffers are moved on
    /// their last use and cloned otherwise, `Zeros` come from the pool.
    fn materialize(
        &mut self,
        graph: &TaskGraph,
        id: NodeId,
        inputs: &HashMap<String, Tensor>,
        pool: &mut BufferPool,
        recorder: &mut dyn Recorder,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let node = &graph.nodes()[id.index()];
        let mut params = Vec::with_capacity(node.bindings.len());
        for (i, binding) in node.bindings.iter().enumerate() {
            let arg = &node.program.args[i];
            let tensor = match binding {
                Binding::External(name) => {
                    let t = inputs
                        .get(name)
                        .ok_or_else(|| RuntimeError::MissingInput { name: name.clone() })?;
                    if t.shape() != [arg.rows, arg.cols] {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has shape {:?}, parameter `{}` of `{}` needs {}x{}",
                                t.shape(),
                                arg.name,
                                node.name,
                                arg.rows,
                                arg.cols
                            ),
                        });
                    }
                    if t.dtype() != arg.dtype {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has dtype {:?}, parameter `{}` of `{}` is {:?}",
                                t.dtype(),
                                arg.name,
                                node.name,
                                arg.dtype
                            ),
                        });
                    }
                    t.clone()
                }
                Binding::Output { node: src, param } => {
                    self.per_param[src.0][*param] -= 1;
                    self.total_remaining[src.0] -= 1;
                    let missing = || RuntimeError::Internal {
                        what: format!(
                            "edge buffer ({}, {param}) was not produced before its consumer \
                             (the schedule is topological, so this is a runtime bug)",
                            src.0
                        ),
                    };
                    let slot = self.slots[src.0]
                        .as_mut()
                        .and_then(|s| s.get_mut(*param))
                        .ok_or_else(missing)?;
                    let last_use = self.per_param[src.0][*param] == 0
                        && !keeps_buffers(graph, src.0, &self.total_initial);
                    if last_use {
                        slot.take().ok_or_else(missing)?
                    } else {
                        slot.as_ref().ok_or_else(missing)?.clone()
                    }
                }
                Binding::Zeros => {
                    // The reuse flag comes from the pool's own counter
                    // delta, so the event agrees with `PoolStats`.
                    let before = recorder.enabled().then(|| pool.stats());
                    let t = pool.acquire(arg.dtype, arg.rows, arg.cols);
                    if let Some(before) = before {
                        recorder.record(Event::PoolAcquire {
                            dtype: arg.dtype,
                            rows: arg.rows,
                            cols: arg.cols,
                            reused: pool.stats().reused > before.reused,
                        });
                    }
                    t
                }
            };
            params.push(tensor);
        }
        Ok(params)
    }

    /// Record the tensors `id` produced.
    fn store(&mut self, id: NodeId, tensors: Vec<Tensor>) {
        self.slots[id.index()] = Some(tensors.into_iter().map(Some).collect());
    }

    /// Recycle any producer that `id` (just finished) drained.
    fn recycle_drained(
        &mut self,
        graph: &TaskGraph,
        id: NodeId,
        pool: &mut BufferPool,
        recorder: &mut dyn Recorder,
    ) {
        for dep in graph.dependencies(id) {
            if self.total_remaining[dep.0] == 0 && !keeps_buffers(graph, dep.0, &self.total_initial)
            {
                if let Some(rest) = self.slots[dep.0].take() {
                    for t in rest.into_iter().flatten() {
                        let before = recorder.enabled().then(|| pool.stats());
                        let dtype = t.dtype();
                        let elements = t.shape().iter().product();
                        pool.release(t);
                        if let Some(before) = before {
                            recorder.record(Event::PoolRelease {
                                dtype,
                                elements,
                                evictions: pool.stats().evicted - before.evicted,
                            });
                        }
                    }
                }
            }
        }
    }
}

/// `launches` is indexed by `NodeId::index()` (one entry per graph node).
/// With `parallelism <= 1` nodes run one at a time in the deterministic
/// topological schedule — the pre-parallel behavior, byte for byte. With
/// more workers, each *ready wave* of nodes (all dependencies satisfied)
/// runs concurrently on the scoped worker pool; inputs are materialized
/// and results joined serially in ascending node order. Each launch is a
/// deterministic function of its input tensors (and pooled buffers are
/// handed out zeroed), so tensors and reports are bit-identical at every
/// parallelism level — only wall time changes.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_functional(
    simulator: &Simulator,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    inputs: &HashMap<String, Tensor>,
    pool: &mut BufferPool,
    policy: SchedulePolicy,
    parallelism: usize,
    recorder: &mut dyn Recorder,
) -> Result<GraphRun, RuntimeError> {
    let mut edges = EdgeBuffers::new(graph);
    let mut reports: Vec<Option<TimingReport>> = vec![None; graph.len()];
    let mut apply_bytes = ApplyBytes::default();

    if parallelism <= 1 {
        for &id in &graph.schedule() {
            let params = edges.materialize(graph, id, inputs, pool, recorder)?;
            let compiled = &launches[id.index()].compiled;
            let run =
                simulator.run_functional_lowered(&compiled.kernel, &compiled.lowered, params)?;
            apply_bytes.merge(run.apply_bytes);
            reports[id.index()] = Some(run.report);
            edges.store(id, run.params);
            edges.recycle_drained(graph, id, pool, recorder);
        }
    } else {
        let (mut indegree, consumers) = graph.dependency_edges();
        let mut wave: Vec<usize> = (0..graph.len()).filter(|&i| indegree[i] == 0).collect();
        let mut wave_index = 0usize;
        while !wave.is_empty() {
            if recorder.enabled() {
                recorder.record(Event::WaveScheduled {
                    wave: wave_index,
                    nodes: wave.clone(),
                });
            }
            wave_index += 1;
            // Materialize inputs serially in ascending node order (the
            // take-vs-clone bookkeeping is order-sensitive), then run the
            // whole wave on the worker pool.
            let mut jobs = Vec::with_capacity(wave.len());
            for &idx in &wave {
                let id = NodeId(idx);
                let params = edges.materialize(graph, id, inputs, pool, recorder)?;
                jobs.push((idx, Arc::clone(&launches[idx].compiled), params));
            }
            let runs = cypress_sim::par::parallel_map(
                parallelism,
                jobs,
                |(idx, compiled, params): (usize, Arc<Compiled>, Vec<Tensor>)| {
                    (
                        idx,
                        simulator.run_functional_lowered(
                            &compiled.kernel,
                            &compiled.lowered,
                            params,
                        ),
                    )
                },
            );
            // Join in input (ascending node) order; the byte counters
            // are commutative sums, so the merged totals match the
            // serial walk exactly.
            for (idx, run) in runs {
                let run = run?;
                apply_bytes.merge(run.apply_bytes);
                reports[idx] = Some(run.report);
                edges.store(NodeId(idx), run.params);
            }
            for &idx in &wave {
                edges.recycle_drained(graph, NodeId(idx), pool, recorder);
            }
            let mut next = Vec::new();
            for &idx in &wave {
                for &c in &consumers[idx] {
                    indegree[c] -= 1;
                    if indegree[c] == 0 {
                        next.push(c);
                    }
                }
            }
            next.sort_unstable();
            wave = next;
        }
    }

    let mut reports: Vec<TimingReport> = reports
        .into_iter()
        .map(|r| {
            r.ok_or_else(|| RuntimeError::Internal {
                what: "a scheduled node never ran (the schedule is topological, so this is a \
                       runtime bug)"
                    .into(),
            })
        })
        .collect::<Result<_, _>>()?;
    // Communication launches are priced by their link, not by the solo
    // simulation of the copy kernel (which already moved the data above).
    for (i, launch) in launches.iter().enumerate() {
        if let Some(comm) = &launch.comm {
            reports[i] = comm_report(
                &launch.compiled.kernel.name,
                comm,
                topology,
                simulator.machine(),
            );
        }
    }
    let report = assemble_report(
        simulator.machine(),
        topology,
        graph,
        launches,
        &reports,
        policy,
    );
    record_graph_events(graph, launches, &reports, &report, recorder);
    Ok(GraphRun {
        names: graph.nodes().iter().map(|n| n.name.clone()).collect(),
        results: edges.slots,
        report,
        apply_bytes,
    })
}

/// Emit the per-node events of one graph run: first the policy-invariant
/// [`Event::NodeExecuted`] stream in ascending node-id (insertion)
/// order, then the schedule's [`Event::NodeSpan`] timeline in completion
/// order (see [`GraphReport::trace_events`]). Both the serial walk and
/// the wave executor land here with `reports` indexed by node id, so the
/// emitted stream is independent of how the nodes actually ran.
fn record_graph_events(
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    report: &GraphReport,
    recorder: &mut dyn Recorder,
) {
    if !recorder.enabled() {
        return;
    }
    for (i, node) in graph.nodes().iter().enumerate() {
        recorder.record(Event::NodeExecuted {
            node: node.name.clone(),
            kernel: launches[i].compiled.kernel.name.clone(),
            cycles: reports[i].cycles,
        });
    }
    for ev in report.trace_events() {
        recorder.record(ev);
    }
}

/// Re-address a rewritten graph's [`GraphRun`] to the *original* graph:
/// the result's node ids and names are the original ones, each
/// parameter's tensor pulled from wherever `target` placed its buffer
/// (a [`crate::fuse::FusionPlan::target`] or
/// [`crate::shard::ShardPlan::target`]), while the timing report keeps
/// the rewritten launches (with their `replaced` annotations) so the
/// timeline shows what actually ran.
pub(crate) fn remap_run(
    run: GraphRun,
    original: &TaskGraph,
    target: &dyn Fn(usize, usize) -> Option<(usize, usize)>,
) -> GraphRun {
    // Clone rather than move: several original slots can share one
    // rewritten buffer (two fused members reading the same operand).
    let rewritten_results = run.results;
    let results = original
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, node)| {
            let params: Vec<Option<Tensor>> = (0..node.program.args.len())
                .map(|p| {
                    let (fi, fp) = target(i, p)?;
                    rewritten_results.get(fi)?.as_ref()?.get(fp)?.clone()
                })
                .collect();
            params.iter().any(Option::is_some).then_some(params)
        })
        .collect();
    GraphRun {
        names: original.nodes().iter().map(|n| n.name.clone()).collect(),
        results,
        report: run.report,
        apply_bytes: run.apply_bytes,
    }
}

/// `launches` is indexed by `NodeId::index()` (one entry per graph node).
pub(crate) fn run_timing(
    simulator: &Simulator,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    policy: SchedulePolicy,
    recorder: &mut dyn Recorder,
) -> Result<GraphReport, RuntimeError> {
    // Solo-time each node once per distinct compiled kernel: graphs that
    // repeat a program (the cache hands back the identical `Arc`) pay for
    // one simulation, not one per node. Communication launches skip the
    // simulator entirely — their cost is link-derived.
    let mut by_kernel: HashMap<*const Compiled, TimingReport> = HashMap::new();
    let mut reports = Vec::with_capacity(graph.len());
    for launch in launches {
        if let Some(comm) = &launch.comm {
            reports.push(comm_report(
                &launch.compiled.kernel.name,
                comm,
                topology,
                simulator.machine(),
            ));
            continue;
        }
        let key = Arc::as_ptr(&launch.compiled);
        let report = match by_kernel.get(&key) {
            Some(r) => r.clone(),
            None => {
                let r = simulator
                    .run_timing_lowered(&launch.compiled.kernel, &launch.compiled.lowered)?;
                by_kernel.insert(key, r.clone());
                r
            }
        };
        reports.push(report);
    }
    let report = assemble_report(
        simulator.machine(),
        topology,
        graph,
        launches,
        &reports,
        policy,
    );
    record_graph_events(graph, launches, &reports, &report, recorder);
    Ok(report)
}

/// Assemble the whole-graph report from per-node solo reports (indexed by
/// `NodeId::index()`) under `policy`.
fn assemble_report(
    machine: &MachineConfig,
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    policy: SchedulePolicy,
) -> GraphReport {
    let schedule = graph.schedule();
    let (nodes, makespan) = match policy {
        SchedulePolicy::Serial => schedule_serial(graph, launches, &schedule, reports),
        SchedulePolicy::Concurrent { .. } => {
            schedule_concurrent(topology, graph, launches, reports, policy.streams())
        }
    };
    GraphReport {
        nodes,
        makespan,
        seconds: machine.cycles_to_seconds(makespan),
        critical_path: critical_path(graph, &schedule, reports),
        streams: policy.streams(),
        devices: topology.device_count(),
    }
}

/// The longest dependency chain of solo node makespans: the lower bound
/// no schedule can beat.
fn critical_path(graph: &TaskGraph, schedule: &[NodeId], reports: &[TimingReport]) -> f64 {
    let mut longest = vec![0.0f64; graph.len()];
    let mut best = 0.0f64;
    for &id in schedule {
        let mut upstream = 0.0f64;
        for dep in graph.dependencies(id) {
            upstream = upstream.max(longest[dep.0]);
        }
        longest[id.index()] = upstream + reports[id.index()].cycles;
        best = best.max(longest[id.index()]);
    }
    best
}

/// Back-to-back launches in schedule order — the pre-stream behavior:
/// the makespan is the running sum of the solo makespans.
fn schedule_serial(
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    schedule: &[NodeId],
    reports: &[TimingReport],
) -> (Vec<NodeTiming>, f64) {
    let mut nodes = Vec::with_capacity(graph.len());
    let mut cursor = 0.0f64;
    for &id in schedule {
        let report = reports[id.index()].clone();
        let start = cursor;
        cursor += report.cycles;
        nodes.push(NodeTiming {
            node: graph.nodes()[id.index()].name.clone(),
            device: launches[id.index()].device,
            stream: 0,
            start,
            end: cursor,
            mapping: launches[id.index()].mapping.clone(),
            tuned_speedup: launches[id.index()].tuned_speedup,
            replaced: launches[id.index()].replaced.clone(),
            report,
        });
    }
    (nodes, cursor)
}

/// Ready-queue scheduling onto `streams` simulated streams *per device*:
/// independent nodes launch as soon as a stream on their device is free,
/// co-resident launches contend for their own device's SMs/L2/HBM
/// through the fluid [`ConcurrentEngine`] (kernels on different devices
/// only meet on links), and communication launches draw on their link's
/// bandwidth instead. Dependents are released as upstream launches
/// retire. Ready nodes and free streams are both taken lowest-id-first;
/// at one device this reduces bit-for-bit to the single-device
/// scheduler.
fn schedule_concurrent(
    topology: &Topology,
    graph: &TaskGraph,
    launches: &[NodeLaunch],
    reports: &[TimingReport],
    streams: usize,
) -> (Vec<NodeTiming>, f64) {
    let n = graph.len();
    let machine = &topology.devices[0];
    let profiles: Vec<KernelProfile> = reports
        .iter()
        .map(|r| KernelProfile::from_report(r, machine))
        .collect();
    let (mut indegree, consumers) = graph.dependency_edges();
    let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut free: Vec<Vec<usize>> = vec![(0..streams).collect(); topology.device_count()];
    let mut stream_of = vec![0usize; n];
    let mut engine = ConcurrentEngine::with_topology(topology);
    let mut nodes = Vec::with_capacity(n);
    let mut makespan = 0.0f64;
    while nodes.len() < n {
        while let Some(&next) = ready
            .iter()
            .filter(|&&i| !free[launches[i].device].is_empty())
            .min()
        {
            ready.retain(|&x| x != next);
            let device = launches[next].device;
            let stream = free[device].remove(0);
            stream_of[next] = stream;
            match &launches[next].comm {
                Some(comm) => {
                    // The link-derived solo cycles were already folded
                    // into this node's report; the demand is the rate a
                    // solo transfer sustains, so an uncontended link
                    // reproduces them exactly.
                    let cycles = reports[next].cycles;
                    engine.launch_transfer(next, comm.link, cycles, comm.bytes / cycles.max(1.0));
                }
                None => engine.launch_on(next, device, &profiles[next]),
            }
        }
        let done = engine
            .advance()
            .expect("a DAG always has a runnable node while incomplete");
        let device = launches[done.id].device;
        let idx = free[device].partition_point(|&s| s < stream_of[done.id]);
        free[device].insert(idx, stream_of[done.id]);
        // `ConcurrentEngine::advance` completions are time-ordered (the
        // engine only moves forward); the makespan still folds with
        // `max` so a violation could never silently shrink it.
        debug_assert!(
            done.end >= makespan,
            "concurrent completions regressed in time: {} after {makespan}",
            done.end
        );
        makespan = makespan.max(done.end);
        nodes.push(NodeTiming {
            node: graph.nodes()[done.id].name.clone(),
            device,
            stream: stream_of[done.id],
            start: done.start,
            end: done.end,
            mapping: launches[done.id].mapping.clone(),
            tuned_speedup: launches[done.id].tuned_speedup,
            replaced: launches[done.id].replaced.clone(),
            report: reports[done.id].clone(),
        });
        for &c in &consumers[done.id] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    (nodes, makespan)
}
