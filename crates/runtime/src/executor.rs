//! Topological graph execution over the simulator.
//!
//! The executor walks the deterministic schedule of a [`TaskGraph`] and
//! launches each node's compiled kernel on [`cypress_sim::Simulator`]. In
//! **functional** mode it threads real tensors along the graph's
//! tensor-buffer edges — the output buffers of one launch become the input
//! buffers of the next — recycling dead intermediates through the
//! [`BufferPool`]. In **timing** mode no data moves; per-node
//! [`cypress_sim::TimingReport`]s accumulate into a whole-graph
//! [`GraphReport`] whose makespan is the sum of the launches.

use crate::error::RuntimeError;
use crate::graph::{Binding, NodeId, TaskGraph};
use crate::pool::BufferPool;
use crate::report::{GraphReport, NodeTiming};
use cypress_core::Compiled;
use cypress_sim::Simulator;
use cypress_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// The result of a functional graph launch: final parameter tensors of
/// every retained node plus the timing report of the simulated schedule.
#[derive(Debug)]
pub struct GraphRun {
    names: Vec<String>,
    /// Per node: final parameter tensors in declaration order (`None` for
    /// nodes whose buffers were recycled into the pool).
    results: Vec<Option<Vec<Option<Tensor>>>>,
    /// Whole-graph timing of the same schedule.
    pub report: GraphReport,
}

impl GraphRun {
    /// The final tensor of `param` of node `id`, if retained.
    #[must_use]
    pub fn tensor(&self, id: NodeId, param: usize) -> Option<&Tensor> {
        self.results.get(id.index())?.as_ref()?.get(param)?.as_ref()
    }

    /// Like [`GraphRun::tensor`], addressing the node by name.
    #[must_use]
    pub fn tensor_of(&self, node: &str, param: usize) -> Option<&Tensor> {
        let idx = self.names.iter().position(|n| n == node)?;
        self.tensor(NodeId(idx), param)
    }

    /// Move the final tensor of `(id, param)` out of the run.
    #[must_use]
    pub fn take_tensor(&mut self, id: NodeId, param: usize) -> Option<Tensor> {
        self.results
            .get_mut(id.index())?
            .as_mut()?
            .get_mut(param)?
            .take()
    }
}

/// `true` if `node`'s buffers survive the launch: sinks (nothing consumes
/// them) and explicitly retained nodes.
fn keeps_buffers(graph: &TaskGraph, node: usize, total_consumers: &[usize]) -> bool {
    graph.nodes()[node].retain || total_consumers[node] == 0
}

/// `kernels` is indexed by `NodeId::index()` (one entry per graph node).
pub(crate) fn run_functional(
    simulator: &Simulator,
    graph: &TaskGraph,
    kernels: &[Arc<Compiled>],
    inputs: &HashMap<String, Tensor>,
    pool: &mut BufferPool,
) -> Result<GraphRun, RuntimeError> {
    let schedule = graph.schedule();
    let mut per_param = graph.consumer_counts();
    let total_initial: Vec<usize> = per_param.iter().map(|c| c.iter().sum()).collect();
    let mut total_remaining = total_initial.clone();
    let mut slots: Vec<Option<Vec<Option<Tensor>>>> = vec![None; graph.len()];
    let mut report = GraphReport::default();

    for &id in &schedule {
        let node = &graph.nodes()[id.index()];
        let compiled = &kernels[id.index()];
        let mut params = Vec::with_capacity(node.bindings.len());
        for (i, binding) in node.bindings.iter().enumerate() {
            let arg = &node.program.args[i];
            let tensor = match binding {
                Binding::External(name) => {
                    let t = inputs
                        .get(name)
                        .ok_or_else(|| RuntimeError::MissingInput { name: name.clone() })?;
                    if t.shape() != [arg.rows, arg.cols] {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has shape {:?}, parameter `{}` of `{}` needs {}x{}",
                                t.shape(),
                                arg.name,
                                node.name,
                                arg.rows,
                                arg.cols
                            ),
                        });
                    }
                    if t.dtype() != arg.dtype {
                        return Err(RuntimeError::BadInput {
                            name: name.clone(),
                            reason: format!(
                                "has dtype {:?}, parameter `{}` of `{}` is {:?}",
                                t.dtype(),
                                arg.name,
                                node.name,
                                arg.dtype
                            ),
                        });
                    }
                    t.clone()
                }
                Binding::Output { node: src, param } => {
                    per_param[src.0][*param] -= 1;
                    total_remaining[src.0] -= 1;
                    let slot = slots[src.0]
                        .as_mut()
                        .and_then(|s| s.get_mut(*param))
                        .expect("producer ran before consumer (schedule is topological)");
                    let last_use = per_param[src.0][*param] == 0
                        && !keeps_buffers(graph, src.0, &total_initial);
                    if last_use {
                        slot.take().expect("edge buffer consumed twice")
                    } else {
                        slot.as_ref().expect("edge buffer missing").clone()
                    }
                }
                Binding::Zeros => pool.acquire(arg.dtype, arg.rows, arg.cols),
            };
            params.push(tensor);
        }

        let run = simulator.run_functional(&compiled.kernel, params)?;
        report.nodes.push(NodeTiming {
            node: node.name.clone(),
            report: run.report,
        });
        slots[id.index()] = Some(run.params.into_iter().map(Some).collect());

        // Recycle any producer this node just finished draining.
        for dep in graph.dependencies(id) {
            if total_remaining[dep.0] == 0 && !keeps_buffers(graph, dep.0, &total_initial) {
                if let Some(rest) = slots[dep.0].take() {
                    for t in rest.into_iter().flatten() {
                        pool.release(t);
                    }
                }
            }
        }
    }

    Ok(GraphRun {
        names: graph.nodes().iter().map(|n| n.name.clone()).collect(),
        results: slots,
        report,
    })
}

/// `kernels` is indexed by `NodeId::index()` (one entry per graph node).
pub(crate) fn run_timing(
    simulator: &Simulator,
    graph: &TaskGraph,
    kernels: &[Arc<Compiled>],
) -> Result<GraphReport, RuntimeError> {
    let schedule = graph.schedule();
    let mut report = GraphReport::default();
    for &id in &schedule {
        let node = &graph.nodes()[id.index()];
        let timing = simulator.run_timing(&kernels[id.index()].kernel)?;
        report.nodes.push(NodeTiming {
            node: node.name.clone(),
            report: timing,
        });
    }
    Ok(report)
}
