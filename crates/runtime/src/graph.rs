//! DAG programs of compiled kernels with explicit tensor-buffer edges.
//!
//! A [`TaskGraph`] is a list of nodes, each holding a [`Program`] and one
//! [`Binding`] per entry parameter. A binding names where the parameter's
//! buffer comes from: an external tensor supplied at launch, the buffer of
//! an earlier node's parameter (a tensor-buffer *edge*), or a fresh zeroed
//! buffer from the session's pool. Because a binding can only reference a
//! node that already exists, graphs are acyclic by construction; the
//! executor still computes an explicit dependency order so schedules stay
//! deterministic and independent of insertion quirks.

use crate::error::RuntimeError;
use crate::program::Program;

/// Handle to a node in a [`TaskGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The node's position in insertion order.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Where one entry parameter's buffer comes from.
#[derive(Debug, Clone)]
pub enum Binding {
    /// Supplied by the caller at launch, keyed by name.
    External(String),
    /// The buffer of `param` of an earlier node — a tensor-buffer edge.
    Output {
        /// Producer node.
        node: NodeId,
        /// Producer parameter index (declaration order).
        param: usize,
    },
    /// A zero-initialized buffer leased from the session's pool (the
    /// typical binding for a node's output parameters).
    Zeros,
}

impl Binding {
    /// Shorthand for [`Binding::External`].
    #[must_use]
    pub fn external(name: &str) -> Self {
        Binding::External(name.to_string())
    }

    /// Shorthand for [`Binding::Output`].
    #[must_use]
    pub fn output(node: NodeId, param: usize) -> Self {
        Binding::Output { node, param }
    }
}

/// One kernel launch in the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Display name (unique within the graph).
    pub name: String,
    /// The program this node launches.
    pub program: Program,
    /// One binding per entry parameter, in declaration order.
    pub bindings: Vec<Binding>,
    /// Keep this node's buffers in the launch result even if consumed
    /// downstream (sinks are always kept).
    pub retain: bool,
}

/// A DAG of kernel launches connected by tensor-buffer edges.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    nodes: Vec<Node>,
}

impl TaskGraph {
    /// An empty graph.
    #[must_use]
    pub fn new() -> Self {
        TaskGraph::default()
    }

    /// Add a node launching `program` with `bindings` (one per entry
    /// parameter, declaration order). Returns the node's handle.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] if the name repeats, the binding count
    /// doesn't match the program's parameter count, an `Output` binding
    /// references a missing node/parameter, or an edge connects
    /// parameters of different shapes.
    pub fn add_node(
        &mut self,
        name: &str,
        program: Program,
        bindings: Vec<Binding>,
    ) -> Result<NodeId, RuntimeError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(RuntimeError::DuplicateNode {
                name: name.to_string(),
            });
        }
        if bindings.len() != program.args.len() {
            return Err(RuntimeError::ArityMismatch {
                node: name.to_string(),
                expected: program.args.len(),
                actual: bindings.len(),
            });
        }
        for (i, b) in bindings.iter().enumerate() {
            if let Binding::Output { node, param } = b {
                let producer = self
                    .nodes
                    .get(node.0)
                    .ok_or(RuntimeError::UnknownNode { id: node.0 })?;
                let src = producer.program.args.get(*param).ok_or_else(|| {
                    RuntimeError::BadOutputIndex {
                        node: producer.name.clone(),
                        param: *param,
                    }
                })?;
                let dst = &program.args[i];
                if (src.rows, src.cols) != (dst.rows, dst.cols) {
                    return Err(RuntimeError::ShapeMismatch {
                        node: name.to_string(),
                        param: dst.name.clone(),
                        expected: (dst.rows, dst.cols),
                        actual: (src.rows, src.cols),
                    });
                }
                if src.dtype != dst.dtype {
                    return Err(RuntimeError::DtypeMismatch {
                        node: name.to_string(),
                        param: dst.name.clone(),
                        expected: dst.dtype,
                        actual: src.dtype,
                    });
                }
            }
        }
        self.nodes.push(Node {
            name: name.to_string(),
            program,
            bindings,
            retain: false,
        });
        Ok(NodeId(self.nodes.len() - 1))
    }

    /// Keep `id`'s buffers in the launch result even when consumed
    /// downstream.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for a stale handle.
    pub fn retain(&mut self, id: NodeId) -> Result<(), RuntimeError> {
        let n = self
            .nodes
            .get_mut(id.0)
            .ok_or(RuntimeError::UnknownNode { id: id.0 })?;
        n.retain = true;
        Ok(())
    }

    /// The node behind a handle.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::UnknownNode`] for a stale handle.
    pub fn node(&self, id: NodeId) -> Result<&Node, RuntimeError> {
        self.nodes
            .get(id.0)
            .ok_or(RuntimeError::UnknownNode { id: id.0 })
    }

    /// All nodes, in insertion order.
    #[must_use]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The direct producers of `id` (deduplicated, ascending).
    #[must_use]
    pub fn dependencies(&self, id: NodeId) -> Vec<NodeId> {
        let mut deps: Vec<usize> = self.nodes[id.0]
            .bindings
            .iter()
            .filter_map(|b| match b {
                Binding::Output { node, .. } => Some(node.0),
                _ => None,
            })
            .collect();
        deps.sort_unstable();
        deps.dedup();
        deps.into_iter().map(NodeId).collect()
    }

    /// Per-node indegree and consumer lists of the dependency DAG — the
    /// adjacency shared by Kahn's algorithm in [`TaskGraph::schedule`]
    /// and the executor's ready-queue stream scheduler (edges are
    /// deduplicated per [`TaskGraph::dependencies`]).
    #[must_use]
    pub fn dependency_edges(&self) -> (Vec<usize>, Vec<Vec<usize>>) {
        let n = self.nodes.len();
        let mut indegree = vec![0usize; n];
        let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, degree) in indegree.iter_mut().enumerate() {
            for dep in self.dependencies(NodeId(i)) {
                *degree += 1;
                consumers[dep.0].push(i);
            }
        }
        (indegree, consumers)
    }

    /// A deterministic topological schedule: Kahn's algorithm with a
    /// smallest-id tie-break, so equal graphs always execute in the same
    /// order regardless of how their edges were declared.
    #[must_use]
    pub fn schedule(&self) -> Vec<NodeId> {
        let n = self.nodes.len();
        let (mut indegree, consumers) = self.dependency_edges();
        // Min-heap over ids via sorted ready list (graphs are small).
        let mut ready: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut order = Vec::with_capacity(n);
        while let Some(&next) = ready.iter().min() {
            ready.retain(|&x| x != next);
            order.push(NodeId(next));
            for &c in &consumers[next] {
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "graphs are acyclic by construction");
        order
    }

    /// How many edges consume each `(node, param)` buffer — what the
    /// executor uses to recycle buffers into the pool after the last
    /// consumer has run.
    #[must_use]
    pub fn consumer_counts(&self) -> Vec<Vec<usize>> {
        let mut counts: Vec<Vec<usize>> = self
            .nodes
            .iter()
            .map(|n| vec![0; n.program.args.len()])
            .collect();
        for node in &self.nodes {
            for b in &node.bindings {
                if let Binding::Output { node: src, param } = b {
                    counts[src.0][*param] += 1;
                }
            }
        }
        counts
    }

    /// External input names the graph needs at launch (deduplicated, in
    /// first-use order).
    #[must_use]
    pub fn external_inputs(&self) -> Vec<String> {
        let mut names = Vec::new();
        for node in &self.nodes {
            for b in &node.bindings {
                if let Binding::External(name) = b {
                    if !names.contains(name) {
                        names.push(name.clone());
                    }
                }
            }
        }
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_sim::MachineConfig;

    fn gemm_program(m: usize, n: usize, k: usize) -> Program {
        Program::from_parts(
            gemm::build(m, n, k, &MachineConfig::test_gpu()).unwrap(),
            "gemm",
        )
    }

    #[test]
    fn edges_validate_shapes() {
        let mut g = TaskGraph::new();
        let a = g
            .add_node(
                "first",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        // 64x64 output feeds a 64x64 input: fine.
        g.add_node(
            "second",
            gemm_program(64, 64, 64),
            vec![
                Binding::Zeros,
                Binding::output(a, 0),
                Binding::external("B2"),
            ],
        )
        .unwrap();
        // 64x64 output feeding a 128x64 input: rejected.
        let err = g
            .add_node(
                "bad",
                gemm_program(128, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::output(a, 0),
                    Binding::external("B3"),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ShapeMismatch { .. }), "{err}");
    }

    #[test]
    fn edges_validate_dtypes() {
        use cypress_tensor::DType;
        let mut g = TaskGraph::new();
        let mut f32_producer = gemm_program(64, 64, 64);
        f32_producer.args[0].dtype = DType::F32;
        let a = g
            .add_node(
                "first",
                f32_producer,
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        // F32 output feeding an F16 input slot: rejected.
        let err = g
            .add_node(
                "second",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::output(a, 0),
                    Binding::external("B2"),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DtypeMismatch { .. }), "{err}");
    }

    #[test]
    fn schedule_is_topological_and_deterministic() {
        let mut g = TaskGraph::new();
        let a = g
            .add_node(
                "a",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        let b = g
            .add_node(
                "b",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        let c = g
            .add_node(
                "c",
                gemm_program(64, 64, 64),
                vec![Binding::Zeros, Binding::output(a, 0), Binding::output(b, 0)],
            )
            .unwrap();
        assert_eq!(g.schedule(), vec![a, b, c]);
        assert_eq!(g.dependencies(c), vec![a, b]);
        assert_eq!(g.consumer_counts()[a.index()][0], 1);
        assert_eq!(g.external_inputs(), vec!["A".to_string(), "B".to_string()]);
    }

    #[test]
    fn arity_and_duplicates_are_rejected() {
        let mut g = TaskGraph::new();
        let err = g
            .add_node("x", gemm_program(64, 64, 64), vec![Binding::Zeros])
            .unwrap_err();
        assert!(matches!(err, RuntimeError::ArityMismatch { .. }));
        g.add_node(
            "x",
            gemm_program(64, 64, 64),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
        let err = g
            .add_node(
                "x",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap_err();
        assert!(matches!(err, RuntimeError::DuplicateNode { .. }));
    }
}
