//! Simulator-driven mapping autotuning.
//!
//! The compiler separates a kernel's logical description from its
//! mapping; [`cypress_core::MappingSpace`] makes the mapping side
//! enumerable. This module adds the missing loop: compile every
//! candidate mapping through the session's kernel cache, time it with
//! the simulator, and remember the winner — the search-based mapping
//! selection systems like Hidet use in place of fixed heuristics.
//!
//! Results live in a [`TuningTable`] keyed by [`TuningKey`] — the
//! *computation* fingerprint (task registry + entry + argument shapes,
//! mapping excluded), the problem shape, and the machine fingerprint —
//! so one tuned entry serves every mapping of the same computation on
//! the same machine. Tables serialize to a canonical text format
//! ([`TuningTable::to_text`] / [`TuningTable::from_text`], plus
//! [`TuningTable::save`] / [`TuningTable::load`]) so tuning survives
//! across sessions and processes; the offline build has no `serde`, so
//! the round-trip is hand-rolled and locked by tests.

use crate::error::RuntimeError;
use crate::program::Program;
use cypress_core::fingerprint::Fnv64;
use cypress_core::{MappingConfig, Shape, COST_MODEL_VERSION};
use cypress_sim::MachineConfig;
use std::cell::Cell;
use std::collections::BTreeMap;
use std::path::Path;

/// Counters of how a [`TuningTable`] has been used (mirrors
/// [`crate::CacheStats`] / [`crate::PoolStats`]). Counters are *not*
/// part of the serialized table and never affect equality — two tables
/// with the same entries are equal however they were exercised.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TunerStats {
    /// Winner lookups through [`TuningTable::get`].
    pub lookups: u64,
    /// Lookups that found a tuned entry.
    pub hits: u64,
    /// Autotune sweeps that actually ran (cache misses of the table).
    pub sweeps: u64,
    /// Candidates compiled and timed across all sweeps.
    pub candidates_timed: u64,
    /// Candidates ranked by the analytical cost model across all guided
    /// sweeps (see [`cypress_core::kernels::cost`]).
    pub ranked: u64,
    /// Candidates the cost model pruned — ranked but never compiled or
    /// timed because they fell outside the sweep's top-k budget.
    pub pruned: u64,
    /// Sweeps seeded from a neighboring shape's winner (see
    /// [`TuningTable::nearest_neighbor`]).
    pub transferred: u64,
}

/// What a [`TuningTable`] entry is keyed by: the computation (not its
/// mapping), the problem shape, and the machine.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TuningKey {
    /// Fingerprint of the task registry, entry name, and entry argument
    /// shapes — everything but the mapping (see
    /// [`computation_fingerprint`]).
    pub computation: u64,
    /// The problem shape the winner was tuned at.
    pub shape: Vec<usize>,
    /// Fingerprint of the [`MachineConfig`] (see
    /// [`machine_fingerprint`]).
    pub machine: u64,
}

/// The outcome of autotuning one computation.
#[derive(Debug, Clone, PartialEq)]
pub struct TunedMapping {
    /// The kernel entry name the winner was tuned for (`"gemm"`,
    /// `"fa"`, ...). Keys fingerprint the whole computation — argument
    /// shapes included — so this is what lets
    /// [`TuningTable::nearest_neighbor`] relate entries tuned at
    /// *different* shapes of the same kernel.
    pub entry: String,
    /// The winning mapping point.
    pub config: MappingConfig,
    /// Simulated solo cycles of the hand-tuned default mapping.
    pub default_cycles: f64,
    /// Simulated solo cycles of the winner (always `<= default_cycles`:
    /// the default is one of the candidates).
    pub tuned_cycles: f64,
    /// The cost model's predicted cycles for the winner, `0.0` when the
    /// winner was unpriceable (see `model_version`).
    pub predicted_cycles: f64,
    /// Candidates evaluated.
    pub candidates: usize,
    /// [`COST_MODEL_VERSION`] of the model that produced
    /// `predicted_cycles`, or `0` when the winner was not priced.
    pub model_version: u32,
}

impl TunedMapping {
    /// `default_cycles / tuned_cycles` — 1.0 means the hand-tuned
    /// mapping was already optimal in the space.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.tuned_cycles > 0.0 {
            self.default_cycles / self.tuned_cycles
        } else {
            1.0
        }
    }
}

/// Persistent store of autotuning winners.
///
/// Entries are held in a `BTreeMap` so iteration — and therefore the
/// serialized text — is canonical: two tables with equal entries render
/// byte-identically.
#[derive(Debug, Clone, Default)]
pub struct TuningTable {
    entries: BTreeMap<TuningKey, TunedMapping>,
    /// Usage counters (interior mutability so read-only lookups count).
    stats: Cell<TunerStats>,
}

impl PartialEq for TuningTable {
    /// Equality compares *entries only*: usage counters are
    /// observability, not content (a loaded table equals the saved one).
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

/// How much simulator time an autotune sweep may spend (see
/// `Session::autotune` in this crate). The exhaustive budget reproduces
/// the classic sweep bit for bit; a top-k budget ranks candidates with
/// the analytical cost model first and pays the simulator only for the
/// best-predicted `k`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunerBudget {
    /// Compile and time every candidate (the PR-7 behavior).
    #[default]
    Exhaustive,
    /// Rank all candidates analytically, then compile and time only the
    /// `k` best-predicted (plus a transferred neighbor winner, when one
    /// exists). `TopK(0)` times only the transferred seed — or the
    /// single best-predicted candidate when no neighbor is known.
    ///
    /// `TopK(k)` with `k >= candidates.len()` is bit-identical to
    /// [`TunerBudget::Exhaustive`]: same winner, same kernel-cache
    /// traffic, same telemetry.
    TopK(usize),
}

/// Header line of the serialized format; bump on layout changes.
/// `v1` lacked the entry name, predicted cycles, and model version;
/// v1 files are rejected with a typed header error.
const HEADER: &str = "cypress-tuning-v2";

impl TuningTable {
    /// An empty table.
    #[must_use]
    pub fn new() -> Self {
        TuningTable::default()
    }

    /// Number of tuned computations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if nothing has been tuned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The tuned winner for `key`, if present. Counts one lookup (and a
    /// hit when found) in [`TuningTable::stats`].
    #[must_use]
    pub fn get(&self, key: &TuningKey) -> Option<&TunedMapping> {
        let found = self.entries.get(key);
        let mut stats = self.stats.get();
        stats.lookups += 1;
        stats.hits += u64::from(found.is_some());
        self.stats.set(stats);
        found
    }

    /// Usage counters accumulated by this table.
    #[must_use]
    pub fn stats(&self) -> TunerStats {
        self.stats.get()
    }

    /// Count one completed sweep that timed `candidates_timed`
    /// candidates.
    pub(crate) fn note_sweep(&self, candidates_timed: u64) {
        let mut stats = self.stats.get();
        stats.sweeps += 1;
        stats.candidates_timed += candidates_timed;
        self.stats.set(stats);
    }

    /// Count one analytical ranking pass: `ranked` candidates priced,
    /// `pruned` of them dropped before timing, plus whether the sweep
    /// was seeded from a neighboring shape's winner.
    pub(crate) fn note_ranking(&self, ranked: u64, pruned: u64, transferred: bool) {
        let mut stats = self.stats.get();
        stats.ranked += ranked;
        stats.pruned += pruned;
        stats.transferred += u64::from(transferred);
        self.stats.set(stats);
    }

    /// Record (or replace) the winner for `key`.
    pub fn insert(&mut self, key: TuningKey, tuned: TunedMapping) {
        self.entries.insert(key, tuned);
    }

    /// The tuned entry for the same kernel and machine at the *nearest
    /// neighboring shape* — how an untuned shape borrows a tuned one's
    /// winner as a transfer seed.
    ///
    /// Candidates must match `entry` and `machine`, have a shape of the
    /// same rank, and not be `shape` itself. Distance between shapes
    /// `a` and `b` is `Σᵢ (max(aᵢ,bᵢ) / min(aᵢ,bᵢ) − 1)` — a relative
    /// measure, so 512→1024 is as near as 2048→4096 and zero only for
    /// identical shapes. It is computed with plain `f64` division (no
    /// transcendentals), so the choice is bit-stable across platforms;
    /// ties keep the first entry in canonical [`TuningKey`] order.
    #[must_use]
    pub fn nearest_neighbor(
        &self,
        entry: &str,
        machine: u64,
        shape: &[usize],
    ) -> Option<(&TuningKey, &TunedMapping)> {
        let distance = |other: &[usize]| -> f64 {
            other
                .iter()
                .zip(shape)
                .map(|(&a, &b)| {
                    let (lo, hi) = (a.min(b).max(1) as f64, a.max(b) as f64);
                    hi / lo - 1.0
                })
                .sum()
        };
        let mut best: Option<(&TuningKey, &TunedMapping, f64)> = None;
        for (key, tuned) in &self.entries {
            if key.machine != machine
                || tuned.entry != entry
                || key.shape.len() != shape.len()
                || key.shape == shape
            {
                continue;
            }
            let d = distance(&key.shape);
            // Strict `<`: ties keep the earliest (canonical-order) key.
            if best.is_none_or(|(_, _, b)| d < b) {
                best = Some((key, tuned, d));
            }
        }
        best.map(|(k, t, _)| (k, t))
    }

    /// Iterate entries in canonical (key) order.
    pub fn iter(&self) -> impl Iterator<Item = (&TuningKey, &TunedMapping)> {
        self.entries.iter()
    }

    /// Merge another table in; `other`'s entries win on key collisions.
    pub fn merge(&mut self, other: TuningTable) {
        self.entries.extend(other.entries);
    }

    /// Serialize to the canonical text format: a header line, then one
    /// entry per line —
    /// `<computation:016x> <machine:016x> <shape d0xd1x...> <entry> <config> <default_cycles> <tuned_cycles> <predicted_cycles> <candidates> <model_version>`.
    /// `f64` cycles print in Rust's shortest round-trip form, so
    /// [`TuningTable::from_text`] reproduces them bit for bit.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(HEADER);
        out.push('\n');
        for (key, tuned) in &self.entries {
            let shape = Shape(key.shape.clone());
            out.push_str(&format!(
                "{:016x} {:016x} {shape} {} {} {} {} {} {} {}\n",
                key.computation,
                key.machine,
                tuned.entry,
                tuned.config.encode(),
                tuned.default_cycles,
                tuned.tuned_cycles,
                tuned.predicted_cycles,
                tuned.candidates,
                tuned.model_version,
            ));
        }
        out
    }

    /// Parse the format produced by [`TuningTable::to_text`].
    ///
    /// Parsing is strict: every line after the header must be a
    /// well-formed 10-field entry with a key not seen before. A table
    /// that parses is therefore exactly the table that was saved — no
    /// entry can be silently shadowed by a duplicate line, and no
    /// half-corrupted line can be silently dropped.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadTuningTable`] on a wrong header
    /// (including the retired `cypress-tuning-v1`), a malformed or
    /// blank entry line, a duplicate key, or an entry whose
    /// `model_version` is newer than this build's
    /// [`COST_MODEL_VERSION`] — predictions from a future model must
    /// not be silently reinterpreted. Every entry error names its line
    /// number.
    pub fn from_text(text: &str) -> Result<Self, RuntimeError> {
        let bad = |reason: String| RuntimeError::BadTuningTable { reason };
        let mut lines = text.lines();
        match lines.next() {
            Some(HEADER) => {}
            other => return Err(bad(format!("expected header `{HEADER}`, found {other:?}"))),
        }
        let mut table = TuningTable::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                // A canonical table has no blank lines; one here means
                // the file was truncated or hand-edited.
                return Err(bad(format!(
                    "line {}: blank line (a saved table has one entry per line)",
                    i + 2
                )));
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            let [comp, machine, shape, entry, config, default_cycles, tuned_cycles, predicted_cycles, candidates, model_version] =
                fields.as_slice()
            else {
                return Err(bad(format!(
                    "line {}: expected 10 fields, found {}",
                    i + 2,
                    fields.len()
                )));
            };
            let parse_hex = |s: &str, what: &str| {
                u64::from_str_radix(s, 16)
                    .map_err(|e| bad(format!("line {}: bad {what} `{s}`: {e}", i + 2)))
            };
            let shape: Vec<usize> = shape
                .split('x')
                .map(|d| {
                    d.parse()
                        .map_err(|e| bad(format!("line {}: bad shape dim `{d}`: {e}", i + 2)))
                })
                .collect::<Result<_, _>>()?;
            let config = MappingConfig::decode(config)
                .ok_or_else(|| bad(format!("line {}: bad mapping config `{config}`", i + 2)))?;
            let parse_f64 = |s: &str, what: &str| {
                s.parse::<f64>()
                    .map_err(|e| bad(format!("line {}: bad {what} `{s}`: {e}", i + 2)))
            };
            let key = TuningKey {
                computation: parse_hex(comp, "computation fingerprint")?,
                shape,
                machine: parse_hex(machine, "machine fingerprint")?,
            };
            if table.entries.contains_key(&key) {
                // Last-write-wins would silently discard an entry the
                // writer thought it persisted.
                return Err(bad(format!(
                    "line {}: duplicate entry for computation {:016x} machine {:016x} shape {}",
                    i + 2,
                    key.computation,
                    key.machine,
                    Shape(key.shape.clone()),
                )));
            }
            let model_version: u32 = model_version
                .parse()
                .map_err(|e| bad(format!("line {}: bad model version: {e}", i + 2)))?;
            if model_version > COST_MODEL_VERSION {
                return Err(bad(format!(
                    "line {}: cost-model version {model_version} is newer than this \
                     build's {COST_MODEL_VERSION}; re-tune or upgrade",
                    i + 2
                )));
            }
            table.insert(
                key,
                TunedMapping {
                    entry: (*entry).to_string(),
                    config,
                    default_cycles: parse_f64(default_cycles, "default cycles")?,
                    tuned_cycles: parse_f64(tuned_cycles, "tuned cycles")?,
                    predicted_cycles: parse_f64(predicted_cycles, "predicted cycles")?,
                    candidates: candidates
                        .parse()
                        .map_err(|e| bad(format!("line {}: bad candidate count: {e}", i + 2)))?,
                    model_version,
                },
            );
        }
        Ok(table)
    }

    /// Write the canonical text to `path`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_text())
    }

    /// Read a table previously written with [`TuningTable::save`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::BadTuningTable`] for unreadable files or
    /// malformed contents.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, RuntimeError> {
        let text =
            std::fs::read_to_string(path.as_ref()).map_err(|e| RuntimeError::BadTuningTable {
                reason: format!("cannot read {}: {e}", path.as_ref().display()),
            })?;
        TuningTable::from_text(&text)
    }
}

/// Fingerprint of a program's *computation*: the task registry (sorted
/// by variant name), the entry task, and the entry argument shapes —
/// deliberately excluding the mapping, so every candidate mapping of one
/// computation shares a tuning-table key.
#[must_use]
pub fn computation_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("cypress-computation-v1");
    h.write_str(&program.entry);
    for arg in &program.args {
        h.write_str(&format!(
            "arg {} {}x{} {:?}",
            arg.name, arg.rows, arg.cols, arg.dtype
        ));
    }
    let mut variants: Vec<_> = program.registry.iter().collect();
    variants.sort_by(|a, b| a.name.cmp(&b.name));
    for v in variants {
        h.write_str(&format!("{v:?}"));
    }
    h.finish()
}

/// Fingerprint of a machine configuration (its `Debug` rendering covers
/// every public field and contains no maps, so it is canonical).
#[must_use]
pub fn machine_fingerprint(machine: &MachineConfig) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("cypress-machine-v1");
    h.write_str(&format!("{machine:?}"));
    h.finish()
}

/// The table key for `program` at `machine` (the shape comes from the
/// program's [`crate::SpaceBinding`]).
#[must_use]
pub(crate) fn key_for(program: &Program, shape: &Shape, machine: &MachineConfig) -> TuningKey {
    TuningKey {
        computation: computation_fingerprint(program),
        shape: shape.0.clone(),
        machine: machine_fingerprint(machine),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm::GemmConfig;

    fn sample_table() -> TuningTable {
        let mut t = TuningTable::new();
        t.insert(
            TuningKey {
                computation: 0xDEAD_BEEF,
                shape: vec![4096, 4096, 4096],
                machine: 0x1234,
            },
            TunedMapping {
                entry: "gemm".into(),
                config: MappingConfig::Gemm(GemmConfig::h100()),
                default_cycles: 123456.75,
                tuned_cycles: 98765.0625,
                predicted_cycles: 101010.5,
                candidates: 36,
                model_version: COST_MODEL_VERSION,
            },
        );
        t.insert(
            TuningKey {
                computation: 1,
                shape: vec![2, 64, 64, 64],
                machine: 0x1234,
            },
            TunedMapping {
                entry: "bgemm".into(),
                config: MappingConfig::Gemm(GemmConfig::test()),
                default_cycles: 10.0,
                tuned_cycles: 10.0,
                predicted_cycles: 0.0,
                candidates: 12,
                model_version: 0,
            },
        );
        t
    }

    #[test]
    fn text_round_trip_is_exact() {
        let table = sample_table();
        let text = table.to_text();
        let back = TuningTable::from_text(&text).unwrap();
        assert_eq!(back, table);
        // Canonical: serializing again is byte-identical.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn malformed_tables_are_typed_errors() {
        assert!(TuningTable::from_text("not-a-table").is_err());
        let mut text = sample_table().to_text();
        text.push_str("zz not enough fields\n");
        assert!(TuningTable::from_text(&text).is_err());
        let truncated = sample_table().to_text().replace("gemm:", "mystery:");
        assert!(TuningTable::from_text(&truncated).is_err());
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let table = sample_table();
        let text = table.to_text();
        // Re-append the first entry line verbatim: the old parser let
        // the later line win silently; now it is a typed error.
        let dup = text.lines().nth(1).unwrap().to_string();
        let corrupted = format!("{text}{dup}\n");
        let err = TuningTable::from_text(&corrupted).unwrap_err();
        assert!(
            err.to_string().contains("duplicate entry"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn blank_and_garbage_lines_are_rejected() {
        let base = sample_table().to_text();
        for junk in ["\n", "   \n", "\t\n", "# a comment\n", "trailing garbage\n"] {
            let corrupted = format!("{base}{junk}");
            assert!(
                TuningTable::from_text(&corrupted).is_err(),
                "appending {junk:?} must be a parse error"
            );
        }
        // A canonical table (with its single trailing newline) still
        // parses: strictness must not break the round-trip.
        assert!(TuningTable::from_text(&base).is_ok());
    }

    proptest::proptest! {
        /// Save/load fuzz: random tables — random fingerprints, shapes,
        /// bit-pattern f64 cycles, mixed GEMM/attention configs —
        /// round-trip exactly, and common corruptions (duplicated
        /// entry, truncated last line, appended garbage) are typed
        /// errors, never silent data loss.
        #[test]
        fn fuzzed_save_load_round_trip(seed in 0u64..1_000_000) {
            use cypress_core::kernels::attention::AttentionConfig;
            use rand::rngs::StdRng;
            use rand::{Rng, RngCore, SeedableRng};
            let mut rng = StdRng::seed_from_u64(seed);
            let finite = |rng: &mut StdRng| loop {
                let x = f64::from_bits(rng.next_u64()).abs();
                if x.is_finite() {
                    return x;
                }
            };
            let mut table = TuningTable::new();
            for _ in 0..rng.gen_range(0usize..6) {
                let dims = rng.gen_range(1usize..5);
                let config = if rng.gen_bool(0.5) {
                    MappingConfig::Gemm(GemmConfig {
                        u: rng.gen_range(1usize..512),
                        v: rng.gen_range(1usize..512),
                        w: rng.gen_range(1usize..256),
                        wgs: rng.gen_range(1usize..4),
                        pipeline: rng.gen_range(1usize..8),
                        warpspecialize: rng.gen_bool(0.5),
                    })
                } else {
                    MappingConfig::Attention(AttentionConfig {
                        br: rng.gen_range(1usize..256),
                        bc: rng.gen_range(1usize..256),
                        wgs: rng.gen_range(1usize..4),
                        pipeline: rng.gen_range(1usize..8),
                    })
                };
                let entries = ["gemm", "bgemm", "dual", "gr", "fa"];
                let model_version = rng.gen_range(0u32..COST_MODEL_VERSION + 1);
                table.insert(
                    TuningKey {
                        computation: rng.next_u64(),
                        shape: (0..dims).map(|_| rng.gen_range(1usize..5000)).collect(),
                        machine: rng.next_u64(),
                    },
                    TunedMapping {
                        entry: entries[rng.gen_range(0usize..entries.len())].into(),
                        config,
                        default_cycles: finite(&mut rng),
                        tuned_cycles: finite(&mut rng),
                        predicted_cycles: if model_version == 0 {
                            0.0
                        } else {
                            finite(&mut rng)
                        },
                        candidates: rng.gen_range(1usize..100),
                        model_version,
                    },
                );
            }

            let text = table.to_text();
            let back = TuningTable::from_text(&text).unwrap();
            proptest::prop_assert_eq!(&back, &table, "parse must reproduce the table");
            proptest::prop_assert_eq!(back.to_text(), text.clone(), "re-serialization is canonical");

            proptest::prop_assert!(
                TuningTable::from_text(&format!("{text}junk line\n")).is_err(),
                "appended garbage must not be skipped"
            );
            if !table.is_empty() {
                let dup = text.lines().nth(1).unwrap();
                proptest::prop_assert!(
                    TuningTable::from_text(&format!("{text}{dup}\n")).is_err(),
                    "a duplicated entry must not silently win"
                );
                let cut = text.trim_end().rsplit_once(' ').unwrap().0;
                proptest::prop_assert!(
                    TuningTable::from_text(&format!("{cut}\n")).is_err(),
                    "a truncated last line must not be skipped"
                );
            }
        }
    }

    #[test]
    fn speedup_reads_the_cycle_ratio() {
        let tuned = TunedMapping {
            entry: "gemm".into(),
            config: MappingConfig::Gemm(GemmConfig::test()),
            default_cycles: 200.0,
            tuned_cycles: 100.0,
            predicted_cycles: 90.0,
            candidates: 4,
            model_version: COST_MODEL_VERSION,
        };
        assert!((tuned.speedup() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn newer_model_versions_are_line_numbered_errors() {
        let mut text = sample_table().to_text();
        // Bump the last field (model version) of the final entry past
        // this build's version.
        let future = COST_MODEL_VERSION + 1;
        let cut = text.trim_end().rsplit_once(' ').unwrap().0;
        text = format!("{cut} {future}\n");
        let err = TuningTable::from_text(&text).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("line 3") && msg.contains(&format!("version {future}")),
            "unexpected error: {msg}"
        );
        // Version 0 (no prediction) and the current version both load.
        assert!(TuningTable::from_text(&sample_table().to_text()).is_ok());
    }

    #[test]
    fn v1_tables_are_rejected_by_header() {
        let v1 = "cypress-tuning-v1\n\
                  000000000000002a 0000000000000007 64x64x64 gemm:64:64:32:1:1:0 10 9 12\n";
        let err = TuningTable::from_text(v1).unwrap_err();
        assert!(
            err.to_string().contains("cypress-tuning-v2"),
            "header error must name the expected version: {err}"
        );
    }

    #[test]
    fn nearest_neighbor_prefers_relative_distance() {
        let mut t = TuningTable::new();
        let tuned = |entry: &str, cycles: f64| TunedMapping {
            entry: entry.into(),
            config: MappingConfig::Gemm(GemmConfig::test()),
            default_cycles: cycles,
            tuned_cycles: cycles,
            predicted_cycles: 0.0,
            candidates: 1,
            model_version: 0,
        };
        let key = |shape: &[usize], machine: u64| TuningKey {
            computation: shape.iter().sum::<usize>() as u64,
            shape: shape.to_vec(),
            machine,
        };
        t.insert(key(&[512, 512, 512], 7), tuned("gemm", 1.0));
        t.insert(key(&[4096, 4096, 4096], 7), tuned("gemm", 2.0));
        t.insert(key(&[1024, 1024, 1024], 9), tuned("gemm", 3.0));
        t.insert(key(&[2048, 2048, 2048], 7), tuned("dual", 4.0));
        t.insert(key(&[8, 2048, 128], 7), tuned("fa", 5.0));

        // Relative distance: 2048^3 is nearer to 4096^3 than to 512^3.
        let (k, m) = t.nearest_neighbor("gemm", 7, &[2048, 2048, 2048]).unwrap();
        assert_eq!(k.shape, vec![4096, 4096, 4096]);
        assert_eq!(m.entry, "gemm");
        // The exact shape never matches itself; other entries/machines
        // and other ranks are invisible.
        let (k, _) = t.nearest_neighbor("gemm", 7, &[512, 512, 512]).unwrap();
        assert_eq!(k.shape, vec![4096, 4096, 4096]);
        assert!(t.nearest_neighbor("gemm", 8, &[512, 512, 512]).is_none());
        assert!(t.nearest_neighbor("gr", 7, &[512, 512, 512]).is_none());
        assert!(t.nearest_neighbor("gemm", 7, &[512, 512]).is_none());
        let (k, _) = t.nearest_neighbor("fa", 7, &[8, 4096, 128]).unwrap();
        assert_eq!(k.shape, vec![8, 2048, 128]);
    }

    #[test]
    fn stats_count_lookups_and_sweeps() {
        let table = sample_table();
        let miss = TuningKey {
            computation: 42,
            shape: vec![1],
            machine: 0,
        };
        assert!(table.get(&miss).is_none());
        let hit = TuningKey {
            computation: 1,
            shape: vec![2, 64, 64, 64],
            machine: 0x1234,
        };
        assert!(table.get(&hit).is_some());
        table.note_sweep(7);
        let s = table.stats();
        assert_eq!(
            (s.lookups, s.hits, s.sweeps, s.candidates_timed),
            (2, 1, 1, 7)
        );
        // Counters never affect equality or the serialized text.
        assert_eq!(table, sample_table());
        assert_eq!(table.to_text(), sample_table().to_text());
    }

    #[test]
    fn machine_fingerprints_distinguish_machines() {
        assert_ne!(
            machine_fingerprint(&MachineConfig::test_gpu()),
            machine_fingerprint(&MachineConfig::h100_sxm5())
        );
    }
}
