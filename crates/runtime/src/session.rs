//! The runtime session: compiler + simulator + kernel cache + buffer pool.
//!
//! A [`Session`] is the long-lived object a serving process keeps around.
//! It owns one [`CypressCompiler`] and one [`Simulator`] for a fixed
//! machine, a fingerprint-keyed [`KernelCache`] so repeated launches of
//! the same `(tasks, mapping, args, machine)` skip the Fig. 6 pass
//! pipeline, and a [`BufferPool`] so intermediate tensors are reused
//! across launches instead of reallocated.
//!
//! Graph launches are scheduled according to the session's
//! [`SchedulePolicy`]. The default, [`SchedulePolicy::Serial`], launches
//! nodes back-to-back in the deterministic topological order — existing
//! callers see bit-identical reports. Switching to
//! [`SchedulePolicy::Concurrent`] assigns independent nodes to simulated
//! streams so their launches overlap (see the
//! [executor docs](crate::executor) and [`crate::GraphReport`] for how to
//! read the resulting timeline). Functional results never depend on the
//! policy: data always moves in the deterministic topological order.

use crate::cache::{CacheStats, KernelCache};
use crate::error::RuntimeError;
use crate::executor;
use crate::executor::GraphRun;
use crate::graph::TaskGraph;
use crate::pool::{BufferPool, PoolStats};
use crate::program::Program;
use crate::report::GraphReport;
use cypress_core::{Compiled, CompilerOptions, CypressCompiler};
use cypress_sim::{MachineConfig, Simulator, TimingReport};
use cypress_tensor::Tensor;
use std::collections::HashMap;
use std::sync::Arc;

/// How a [`Session`] schedules the nodes of a [`TaskGraph`].
///
/// The policy only affects *timing*: which simulated stream each node is
/// assigned to and how launches overlap in the [`GraphReport`] timeline.
/// Functional tensor results are identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Launch nodes back-to-back in the deterministic topological
    /// schedule. The graph makespan is the sum of the solo launches —
    /// the pre-stream behavior, bit for bit.
    #[default]
    Serial,
    /// Ready-queue scheduling onto `streams` simulated streams:
    /// independent nodes launch as soon as a stream frees up, co-resident
    /// launches contend for SMs, L2, and HBM under the
    /// [`cypress_sim::concurrent`] model, and dependents are released as
    /// upstream launches retire. `streams: 1` reproduces
    /// [`SchedulePolicy::Serial`] numbers exactly.
    Concurrent {
        /// Number of simulated streams (clamped to at least 1).
        streams: usize,
    },
}

impl SchedulePolicy {
    /// The stream count the policy schedules onto (1 for serial).
    #[must_use]
    pub fn streams(&self) -> usize {
        match self {
            SchedulePolicy::Serial => 1,
            SchedulePolicy::Concurrent { streams } => (*streams).max(1),
        }
    }
}

/// A long-lived runtime for compiling and launching task graphs.
#[derive(Debug)]
pub struct Session {
    compiler: CypressCompiler,
    simulator: Simulator,
    cache: KernelCache,
    pool: BufferPool,
    policy: SchedulePolicy,
}

impl Session {
    /// A session targeting `machine` with default compiler options.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        Session::with_options(CompilerOptions {
            machine,
            ..Default::default()
        })
    }

    /// A session with explicit compiler options.
    #[must_use]
    pub fn with_options(opts: CompilerOptions) -> Self {
        let machine = opts.machine.clone();
        Session {
            compiler: CypressCompiler::new(opts),
            simulator: Simulator::new(machine),
            cache: KernelCache::new(),
            pool: BufferPool::new(),
            policy: SchedulePolicy::default(),
        }
    }

    /// The machine this session compiles for and simulates.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        self.simulator.machine()
    }

    /// The schedule policy graph launches currently use.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Change how subsequent graph launches are scheduled.
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// Builder-style [`Session::set_policy`].
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Compile `program`, reusing the cached kernel when the fingerprint
    /// of `(tasks, mapping, entry args, machine, options)` matches a
    /// previous compile. A hit returns the identical [`Compiled`] without
    /// re-running any pass.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError::Compile`] from the pass pipeline.
    pub fn compile(&mut self, program: &Program) -> Result<Arc<Compiled>, RuntimeError> {
        let fp = self.compiler.fingerprint(
            &program.registry,
            &program.mapping,
            &program.entry,
            &program.args,
        );
        let compiler = &self.compiler;
        let compiled = self.cache.get_or_compile(fp, || {
            compiler.compile_with_fingerprint(
                &program.registry,
                &program.mapping,
                &program.entry,
                &program.args,
                fp,
            )
        })?;
        Ok(compiled)
    }

    /// One compiled kernel per node, indexed by `NodeId::index()` so the
    /// executor never depends on schedule order for the pairing.
    fn compile_nodes(&mut self, graph: &TaskGraph) -> Result<Vec<Arc<Compiled>>, RuntimeError> {
        graph
            .nodes()
            .iter()
            .map(|node| {
                let program = node.program.clone();
                self.compile(&program)
            })
            .collect()
    }

    /// Launch `graph` functionally: real data flows along the graph's
    /// tensor-buffer edges, `inputs` supplies the `External` bindings, and
    /// the result holds every retained node's final tensors plus the
    /// whole-graph timing report.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile failure, missing or mis-shaped
    /// inputs, or simulation failure.
    pub fn launch_functional(
        &mut self,
        graph: &TaskGraph,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<GraphRun, RuntimeError> {
        let kernels = self.compile_nodes(graph)?;
        executor::run_functional(
            &self.simulator,
            graph,
            &kernels,
            inputs,
            &mut self.pool,
            self.policy,
        )
    }

    /// Launch `graph` in timing mode: no data moves; the result is the
    /// whole-graph [`GraphReport`] with per-node stream timeline, built
    /// according to the session's [`SchedulePolicy`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn launch_timing(&mut self, graph: &TaskGraph) -> Result<GraphReport, RuntimeError> {
        let kernels = self.compile_nodes(graph)?;
        executor::run_timing(&self.simulator, graph, &kernels, self.policy)
    }

    /// Compile (with caching) and functionally run a single program —
    /// the one-kernel special case of [`Session::launch_functional`],
    /// mirroring [`Simulator::run_functional`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn run_functional(
        &mut self,
        program: &Program,
        params: Vec<Tensor>,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let compiled = self.compile(program)?;
        Ok(self
            .simulator
            .run_functional(&compiled.kernel, params)?
            .params)
    }

    /// Compile (with caching) and time a single program.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn run_timing(&mut self, program: &Program) -> Result<TimingReport, RuntimeError> {
        let compiled = self.compile(program)?;
        Ok(self.simulator.run_timing(&compiled.kernel)?)
    }

    /// Kernel-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Buffer-pool counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drop all cached kernels and pooled buffers (counters are kept).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.pool.clear();
    }
}
