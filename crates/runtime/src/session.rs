//! The runtime session: compiler + simulator + kernel cache + buffer pool.
//!
//! A [`Session`] is the long-lived object a serving process keeps around.
//! It owns one [`CypressCompiler`] and one [`Simulator`] for a fixed
//! machine, a fingerprint-keyed [`KernelCache`] so repeated launches of
//! the same `(tasks, mapping, args, machine)` skip the Fig. 6 pass
//! pipeline, and a [`BufferPool`] so intermediate tensors are reused
//! across launches instead of reallocated.
//!
//! Graph launches are scheduled according to the session's
//! [`SchedulePolicy`]. The default, [`SchedulePolicy::Serial`], launches
//! nodes back-to-back in the deterministic topological order — existing
//! callers see bit-identical reports. Switching to
//! [`SchedulePolicy::Concurrent`] assigns independent nodes to simulated
//! streams so their launches overlap (see the
//! [executor docs](crate::executor) and [`crate::GraphReport`] for how to
//! read the resulting timeline). Functional results never depend on the
//! policy: data always moves in the deterministic topological order.
//!
//! Orthogonally, the session's [`MappingPolicy`] chooses *which mapping*
//! each node launches with. [`MappingPolicy::Default`] (the default)
//! runs every program's own mapping — the hand-tuned path, bit for bit.
//! [`MappingPolicy::Autotune`] transparently autotunes every node that
//! carries a [`crate::SpaceBinding`] (see [`Session::autotune`]): the
//! space's candidates are compiled through the kernel cache, timed with
//! the simulator, and the winner is launched and recorded in the
//! session's [`TuningTable`]. Mapping spaces only enumerate functionally
//! transparent candidates, so tensors are identical under either policy;
//! only the timeline changes.
//!
//! A third axis, the session's [`FusionPolicy`], chooses *which
//! launches* a graph turns into. [`FusionPolicy::Off`] (the default)
//! launches the graph exactly as written. [`FusionPolicy::Auto`] runs
//! the fusion rewriter (see [`crate::fuse`]) first: producer→consumer
//! patterns collapse into the paper's fused kernels when the simulator
//! confirms the fused launch wins, with results re-addressed to the
//! caller's node ids and bitwise identical either way.
//!
//! A fourth axis, the session's [`PlacementPolicy`], chooses *where*
//! the launches run. [`PlacementPolicy::SingleDevice`] (the default)
//! keeps everything on one simulated device.
//! [`PlacementPolicy::Sharded`] partitions the (possibly fused) graph
//! across N simulated devices connected by NVLink-class links (see
//! [`cypress_sim::Topology`] and [`crate::shard`]): every cross-device
//! edge becomes an explicit transfer kernel charged to its link, the
//! concurrent scheduler overlaps communication with compute, and
//! results are re-addressed to the caller's node ids — bitwise
//! identical at every device count. `Sharded { devices: 1 }` is
//! exactly `SingleDevice`, timeline included.

use crate::cache::{CacheStats, KernelCache};
use crate::error::RuntimeError;
use crate::executor;
use crate::executor::{CommLaunch, GraphRun, NodeLaunch};
use crate::fuse::{self, FusionPlan, FusionPolicy};
use crate::graph::TaskGraph;
use crate::pool::{BufferPool, PoolStats};
use crate::program::Program;
use crate::report::{GraphReport, Recovery};
use crate::shard::{self, PlacementPolicy, ShardPlan};
use crate::telemetry::{Event, MetricsRegistry, MetricsSnapshot, NoopRecorder, Recorder};
use crate::tuner::{key_for, TunedMapping, TunerBudget, TuningKey, TuningTable};
use cypress_core::{Compiled, CompilerOptions, CypressCompiler, COST_MODEL_VERSION};
use cypress_sim::{FaultPlan, MachineConfig, Simulator, TimingReport, Topology};
use cypress_tensor::Tensor;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// How a [`Session`] schedules the nodes of a [`TaskGraph`].
///
/// The policy only affects *timing*: which simulated stream each node is
/// assigned to and how launches overlap in the [`GraphReport`] timeline.
/// Functional tensor results are identical under every policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Launch nodes back-to-back in the deterministic topological
    /// schedule. The graph makespan is the sum of the solo launches —
    /// the pre-stream behavior, bit for bit.
    #[default]
    Serial,
    /// Ready-queue scheduling onto `streams` simulated streams:
    /// independent nodes launch as soon as a stream frees up, co-resident
    /// launches contend for SMs, L2, and HBM under the
    /// [`cypress_sim::concurrent`] model, and dependents are released as
    /// upstream launches retire. `streams: 1` reproduces
    /// [`SchedulePolicy::Serial`] numbers exactly.
    Concurrent {
        /// Number of simulated streams (clamped to at least 1).
        streams: usize,
    },
}

impl SchedulePolicy {
    /// The stream count the policy schedules onto (1 for serial).
    #[must_use]
    pub fn streams(&self) -> usize {
        match self {
            SchedulePolicy::Serial => 1,
            SchedulePolicy::Concurrent { streams } => (*streams).max(1),
        }
    }
}

/// Which mapping each launched node uses (mirrors [`SchedulePolicy`]).
///
/// The policy never changes functional results: mapping spaces only
/// enumerate candidates that compute bitwise the same function as the
/// default mapping. It changes which compiled kernel runs, and therefore
/// the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MappingPolicy {
    /// Every node launches its program's own mapping — the hand-tuned
    /// default path, preserved bit for bit.
    #[default]
    Default,
    /// Nodes whose programs carry a [`crate::SpaceBinding`] launch the
    /// autotuned winner of their mapping space (tuning on first
    /// encounter, then served from the session's [`TuningTable`]);
    /// unbound programs fall back to their own mapping.
    Autotune,
    /// Like [`MappingPolicy::Autotune`], but sweeps run under
    /// [`TunerBudget::TopK`]`(top_k)`: every candidate is priced by the
    /// analytical cost model (see [`cypress_core::kernels::cost`]), and
    /// only the `top_k` best-predicted — plus a transferred neighbor
    /// winner, when the [`TuningTable`] knows one — are compiled and
    /// timed. With `top_k >= candidates.len()` this is bit-identical to
    /// [`MappingPolicy::Autotune`]; tensors are bitwise identical under
    /// every policy regardless.
    Guided {
        /// Best-predicted candidates to compile and time per sweep.
        top_k: usize,
    },
}

/// How a [`Session`] reacts to injected faults during a graph launch —
/// the fifth policy axis, layered on the [`cypress_sim::FaultPlan`]
/// attached with [`Session::set_fault_plan`].
///
/// The policy lives entirely in the *timing* domain: functional tensors
/// are computed along the deterministic topological data path before
/// the schedule is simulated, so a launch that completes under
/// [`FaultPolicy::Retry`] returns tensors bitwise identical to the
/// fault-free run. With no fault plan attached both policies are
/// bit-identical to each other and to the pre-fault runtime, timeline
/// included.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum FaultPolicy {
    /// The first injected fault aborts the launch with a typed error —
    /// [`RuntimeError::NodeFailed`] for a transient kernel fault,
    /// [`RuntimeError::DeviceLost`] for a permanent device loss — each
    /// carrying the partial [`GraphReport`].
    #[default]
    FailFast,
    /// Transient faults re-execute the node (visible as
    /// `retry:`-prefixed spans in the timeline) after an optional
    /// backoff window; a permanent device loss evicts the device and
    /// the run degrades onto the survivors — unexecuted nodes re-shard
    /// (see [`crate::shard`]), stranded buffers drain over the links as
    /// `xfer:recover:` spans — and the launch completes with
    /// bitwise-identical tensors and a populated
    /// [`GraphReport::recovery`] section.
    Retry {
        /// Total launches one node may consume before the graph launch
        /// aborts with [`RuntimeError::NodeFailed`] (clamped to at
        /// least 1).
        max_attempts: u32,
        /// Cycles to wait before re-launching a transiently failed node
        /// (`0.0` retries immediately).
        backoff: f64,
    },
}

/// A task graph compiled once by [`Session::compile_graph`] — fusion
/// planned, every node's kernel compiled (through the kernel cache) and
/// its mapping chosen — ready to launch repeatedly against fresh inputs
/// with [`Session::launch_compiled`].
///
/// This is the replay primitive for serving loops: the fusion rewrite,
/// the Fig. 6 pass pipeline, the bytecode lowering, and any autotuning
/// all happen exactly once, at compile time. Each launch only re-binds
/// the `External` inputs and replays the already-lowered launches; the
/// graph topology is never re-walked and the compiler is never
/// consulted again. The handle owns [`Arc`]s to its compiled kernels,
/// so it stays valid even after [`Session::clear`] evicts the cache.
///
/// Results are bitwise identical to [`Session::launch_functional`] on
/// the same graph: the fusion and mapping decisions are frozen at
/// compile time, while the schedule policy and host parallelism in
/// effect at *launch* time shape the timeline (never the tensors).
#[derive(Debug)]
pub struct CompiledGraph {
    /// The graph as submitted; results stay addressed by its node ids.
    graph: TaskGraph,
    /// The fusion rewrite, when the session's policy rewrote the graph.
    plan: Option<FusionPlan>,
    /// The shard rewrite, when the session's placement policy
    /// partitioned the (possibly fused) graph across devices.
    shard: Option<ShardPlan>,
    /// The device topology frozen at compile time, so launches replay
    /// against the same links the shard plan was made for.
    topology: Topology,
    /// One launch per executed node — of the sharded graph when `shard`
    /// is set, of the fused graph when `plan` is, of `graph` otherwise.
    launches: Vec<NodeLaunch>,
}

impl CompiledGraph {
    /// The graph that actually executes: the sharded rewrite of the
    /// fused rewrite, whichever of the two fired.
    fn exec_graph(&self) -> &TaskGraph {
        self.shard
            .as_ref()
            .map(|s| &s.graph)
            .or_else(|| self.plan.as_ref().map(|p| &p.graph))
            .unwrap_or(&self.graph)
    }

    /// The graph this handle was compiled from (the caller's addressing).
    #[must_use]
    pub fn graph(&self) -> &TaskGraph {
        &self.graph
    }

    /// Number of launches a run of this handle performs (fewer than
    /// `graph().len()` when fusion collapsed nodes).
    #[must_use]
    pub fn launch_count(&self) -> usize {
        self.launches.len()
    }

    /// Whether the session's fusion policy rewrote this graph.
    #[must_use]
    pub fn is_fused(&self) -> bool {
        self.plan.is_some()
    }

    /// Whether the session's placement policy sharded this graph across
    /// devices.
    #[must_use]
    pub fn is_sharded(&self) -> bool {
        self.shard.is_some()
    }
}

/// A long-lived runtime for compiling and launching task graphs.
#[derive(Debug)]
pub struct Session {
    compiler: CypressCompiler,
    simulator: Simulator,
    cache: KernelCache,
    pool: BufferPool,
    policy: SchedulePolicy,
    mapping_policy: MappingPolicy,
    fusion_policy: FusionPolicy,
    placement_policy: PlacementPolicy,
    fault_policy: FaultPolicy,
    /// Faults subsequent launches inject into the timing schedule
    /// (see [`Session::set_fault_plan`]); `None` injects nothing.
    fault_plan: Option<FaultPlan>,
    /// Per-node completion bound in cycles (see
    /// [`Session::set_node_deadline`]).
    node_deadline: Option<f64>,
    /// Whole-graph makespan bound in cycles (see
    /// [`Session::set_graph_deadline`]).
    graph_deadline: Option<f64>,
    tuning: TuningTable,
    /// Compiled winners per tuning key, so warm `Autotune` launches skip
    /// the space builder entirely.
    tuned_launches: HashMap<TuningKey, NodeLaunch>,
    /// Keys whose space has no valid candidate on this machine, so warm
    /// fallback launches skip re-enumerating the candidate grid.
    untunable: HashSet<TuningKey>,
    /// Solo makespans per compiled-kernel fingerprint — what the fusion
    /// rewriter's simulator gate consults, memoized so warm launches pay
    /// hash lookups instead of re-simulation.
    solo_cycles: HashMap<u64, f64>,
    /// Host worker threads for the functional graph executor, the
    /// autotune sweep, and concurrent solo timing (see
    /// [`Session::set_parallelism`]).
    parallelism: usize,
    /// Telemetry sink every launch reports to (see
    /// [`Session::set_recorder`]); [`NoopRecorder`] by default, so the
    /// hot path constructs no events.
    recorder: Box<dyn Recorder>,
    /// Counters no component stats struct carries (fusion decisions,
    /// sweep replays, functional apply bytes); unified with the cache,
    /// pool, and tuner stats by [`Session::metrics`].
    metrics: MetricsRegistry,
}

impl Session {
    /// A session targeting `machine` with default compiler options.
    #[must_use]
    pub fn new(machine: MachineConfig) -> Self {
        Session::with_options(CompilerOptions {
            machine,
            ..Default::default()
        })
    }

    /// A session with explicit compiler options.
    #[must_use]
    pub fn with_options(opts: CompilerOptions) -> Self {
        let machine = opts.machine.clone();
        Session {
            compiler: CypressCompiler::new(opts),
            simulator: Simulator::new(machine),
            cache: KernelCache::new(),
            pool: BufferPool::new(),
            policy: SchedulePolicy::default(),
            mapping_policy: MappingPolicy::default(),
            fusion_policy: FusionPolicy::default(),
            placement_policy: PlacementPolicy::default(),
            fault_policy: FaultPolicy::default(),
            fault_plan: None,
            node_deadline: None,
            graph_deadline: None,
            tuning: TuningTable::new(),
            tuned_launches: HashMap::new(),
            untunable: HashSet::new(),
            solo_cycles: HashMap::new(),
            parallelism: cypress_sim::par::available(),
            recorder: Box::new(NoopRecorder),
            metrics: MetricsRegistry::default(),
        }
    }

    /// The machine this session compiles for and simulates.
    #[must_use]
    pub fn machine(&self) -> &MachineConfig {
        self.simulator.machine()
    }

    /// The schedule policy graph launches currently use.
    #[must_use]
    pub fn policy(&self) -> SchedulePolicy {
        self.policy
    }

    /// Change how subsequent graph launches are scheduled.
    pub fn set_policy(&mut self, policy: SchedulePolicy) {
        self.policy = policy;
    }

    /// Builder-style [`Session::set_policy`].
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// The mapping policy node launches currently use.
    #[must_use]
    pub fn mapping_policy(&self) -> MappingPolicy {
        self.mapping_policy
    }

    /// Change which mapping subsequent launches use.
    pub fn set_mapping_policy(&mut self, policy: MappingPolicy) {
        self.mapping_policy = policy;
    }

    /// Builder-style [`Session::set_mapping_policy`].
    #[must_use]
    pub fn with_mapping_policy(mut self, policy: MappingPolicy) -> Self {
        self.mapping_policy = policy;
        self
    }

    /// The fusion policy graph launches currently use.
    #[must_use]
    pub fn fusion_policy(&self) -> FusionPolicy {
        self.fusion_policy
    }

    /// Change whether subsequent graph launches are rewritten through
    /// the fusion rewriter (see [`crate::fuse`]). [`FusionPolicy::Off`]
    /// launches graphs exactly as written; [`FusionPolicy::Auto`]
    /// collapses producer→consumer patterns into the paper's fused
    /// kernels when the simulator confirms the fused launch wins —
    /// functional results stay bitwise identical either way.
    pub fn set_fusion_policy(&mut self, policy: FusionPolicy) {
        self.fusion_policy = policy;
    }

    /// Builder-style [`Session::set_fusion_policy`].
    #[must_use]
    pub fn with_fusion_policy(mut self, policy: FusionPolicy) -> Self {
        self.fusion_policy = policy;
        self
    }

    /// The placement policy graph launches currently use.
    #[must_use]
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.placement_policy
    }

    /// Change how subsequent graph launches are placed onto simulated
    /// devices (see [`crate::shard`]).
    /// [`PlacementPolicy::SingleDevice`] keeps everything on one
    /// device; [`PlacementPolicy::Sharded`] partitions each graph
    /// across N devices connected by NVLink-class links, inserting
    /// explicit transfer kernels on cross-device edges — functional
    /// results stay bitwise identical at every device count.
    pub fn set_placement_policy(&mut self, policy: PlacementPolicy) {
        self.placement_policy = policy;
    }

    /// Builder-style [`Session::set_placement_policy`].
    #[must_use]
    pub fn with_placement_policy(mut self, policy: PlacementPolicy) -> Self {
        self.placement_policy = policy;
        self
    }

    /// The fault policy graph launches currently use.
    #[must_use]
    pub fn fault_policy(&self) -> FaultPolicy {
        self.fault_policy
    }

    /// Change how subsequent graph launches react to injected faults
    /// (see [`FaultPolicy`]). Inert until a fault plan is attached with
    /// [`Session::set_fault_plan`].
    pub fn set_fault_policy(&mut self, policy: FaultPolicy) {
        self.fault_policy = policy;
    }

    /// Builder-style [`Session::set_fault_policy`].
    #[must_use]
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// The fault plan subsequent graph launches inject, if any.
    #[must_use]
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Attach a deterministic [`FaultPlan`] that subsequent graph
    /// launches inject into their timing schedule (`None` detaches).
    /// An empty plan injects nothing and leaves every schedule
    /// bit-identical to a plan-free launch, timeline included. A
    /// non-empty plan routes even [`SchedulePolicy::Serial`] launches
    /// through the concurrent engine (at one stream per device) — the
    /// serial walk has no notion of in-flight launches to kill or
    /// retry.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.fault_plan = plan;
    }

    /// Builder-style [`Session::set_fault_plan`].
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// The per-node completion deadline in cycles, if set.
    #[must_use]
    pub fn node_deadline(&self) -> Option<f64> {
        self.node_deadline
    }

    /// Bound the cycles from a node's first launch to its successful
    /// retirement: a node that exceeds the bound aborts the graph
    /// launch with [`RuntimeError::DeadlineExceeded`] carrying the
    /// partial report (`None` removes the bound).
    pub fn set_node_deadline(&mut self, deadline: Option<f64>) {
        self.node_deadline = deadline;
    }

    /// Builder-style [`Session::set_node_deadline`].
    #[must_use]
    pub fn with_node_deadline(mut self, deadline: f64) -> Self {
        self.node_deadline = Some(deadline);
        self
    }

    /// The whole-graph makespan deadline in cycles, if set.
    #[must_use]
    pub fn graph_deadline(&self) -> Option<f64> {
        self.graph_deadline
    }

    /// Bound the whole schedule's makespan: a launch whose timeline
    /// passes the bound aborts with [`RuntimeError::DeadlineExceeded`]
    /// carrying the partial report (`None` removes the bound).
    pub fn set_graph_deadline(&mut self, deadline: Option<f64>) {
        self.graph_deadline = deadline;
    }

    /// Builder-style [`Session::set_graph_deadline`].
    #[must_use]
    pub fn with_graph_deadline(mut self, deadline: f64) -> Self {
        self.graph_deadline = Some(deadline);
        self
    }

    /// Bound the kernel cache to at most `capacity` compiled kernels
    /// (LRU eviction; `None` removes the bound). Autotuning compiles one
    /// kernel per candidate, so bounded sessions keep memory flat.
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        self.cache.set_capacity(capacity);
    }

    /// Builder-style [`Session::set_cache_capacity`].
    #[must_use]
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache.set_capacity(Some(capacity));
        self
    }

    /// Bound the buffer pool to at most `capacity` parked buffers
    /// (least-recently-released eviction; `None` removes the bound).
    /// Sessions serving shape-diverse graphs keep memory flat this way
    /// instead of parking one buffer per distinct shape forever.
    pub fn set_pool_capacity(&mut self, capacity: Option<usize>) {
        self.pool.set_capacity(capacity);
    }

    /// Builder-style [`Session::set_pool_capacity`].
    #[must_use]
    pub fn with_pool_capacity(mut self, capacity: usize) -> Self {
        self.pool.set_capacity(Some(capacity));
        self
    }

    /// Attach a telemetry [`Recorder`] that subsequent launches report
    /// to (mirrors [`Session::set_policy`]). The usual sink is a
    /// [`crate::TraceLog`] clone — keep one handle, hand the session the
    /// other, read the events after launching. Replacing the recorder
    /// drops the previous one; pass [`NoopRecorder`] to detach.
    pub fn set_recorder(&mut self, recorder: impl Recorder + 'static) {
        self.recorder = Box::new(recorder);
    }

    /// Builder-style [`Session::set_recorder`].
    #[must_use]
    pub fn with_recorder(mut self, recorder: impl Recorder + 'static) -> Self {
        self.set_recorder(recorder);
        self
    }

    /// One unified snapshot of everything the session counts: cache,
    /// pool, and tuner stats plus fusion decisions, parallel-sweep cache
    /// replays, and the functional apply-path byte counters.
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics
            .snapshot(self.cache.stats(), self.pool.stats(), self.tuning.stats())
    }

    /// The host worker threads the session currently uses.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Set how many host worker threads the session may use (clamped to
    /// at least 1; new sessions default to the available cores). The
    /// workers parallelize *host-side* work — running ready graph nodes
    /// in the functional executor, compiling and timing autotune
    /// candidates, and solo-timing kernel batches. `1` reproduces the
    /// serial behavior exactly; at every setting tensors, reports, and
    /// tuning winners are bit-identical — only wall time changes.
    pub fn set_parallelism(&mut self, parallelism: usize) {
        self.parallelism = parallelism.max(1);
        self.simulator.set_parallelism(parallelism);
    }

    /// Builder-style [`Session::set_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.set_parallelism(parallelism);
        self
    }

    /// The session's accumulated tuning results.
    #[must_use]
    pub fn tuning_table(&self) -> &TuningTable {
        &self.tuning
    }

    /// Adopt previously persisted tuning results (e.g. from
    /// [`TuningTable::load`]); entries in `table` replace the session's
    /// on key collisions, and any memoized launches are invalidated so
    /// subsequent autotuned launches use the imported winners without
    /// re-timing the space.
    pub fn import_tuning(&mut self, table: TuningTable) {
        // Imported winners may differ from the ones already launched;
        // drop the compiled-launch memo (and the untunable marks, which
        // the imported table supersedes) so neither serves stale picks.
        self.tuned_launches.clear();
        self.untunable.clear();
        self.tuning.merge(table);
    }

    /// Compile `program`, reusing the cached kernel when the fingerprint
    /// of `(tasks, mapping, entry args, machine, options)` matches a
    /// previous compile. A hit returns the identical [`Compiled`] without
    /// re-running any pass.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError::Compile`] from the pass pipeline.
    pub fn compile(&mut self, program: &Program) -> Result<Arc<Compiled>, RuntimeError> {
        let fp = self.compiler.fingerprint(
            &program.registry,
            &program.mapping,
            &program.entry,
            &program.args,
        );
        let before = self.recorder.enabled().then(|| self.cache.stats());
        let compiler = &self.compiler;
        let compiled = self.cache.get_or_compile(fp, || {
            compiler.compile_with_fingerprint(
                &program.registry,
                &program.mapping,
                &program.entry,
                &program.args,
                fp,
            )
        })?;
        if let Some(before) = before {
            self.record_cache_lookup(fp, before, &compiled);
        }
        Ok(compiled)
    }

    /// Emit the [`Event::CacheLookup`] for one successful lookup (hit
    /// and eviction flags read from the cache's own counter deltas) and,
    /// on a miss, the opt-in host-time [`Event::CompilePass`] stream of
    /// the freshly compiled kernel.
    fn record_cache_lookup(&mut self, fp: u64, before: CacheStats, compiled: &Compiled) {
        let after = self.cache.stats();
        let hit = after.hits > before.hits;
        self.recorder.record(Event::CacheLookup {
            fingerprint: fp,
            hit,
            evictions: after.evictions - before.evictions,
        });
        if !hit {
            for (pass, ns) in &compiled.pass_nanos {
                self.recorder.record(Event::CompilePass {
                    pass: pass.clone(),
                    host_ns: *ns,
                });
            }
        }
    }

    /// Autotune `program`'s mapping: enumerate its space's candidates
    /// for this session's machine, compile each through the kernel cache,
    /// time each with the simulator, and record the fastest in the
    /// session's [`TuningTable`] keyed by `(computation fingerprint,
    /// shape, machine fingerprint)`. Repeated calls (and
    /// [`MappingPolicy::Autotune`] launches) are served from the table
    /// without re-timing. Ties go to the earliest candidate in the
    /// space's deterministic enumeration order, so two sessions tuning
    /// the same program always pick the same winner.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NoMappingSpace`] when the program carries no
    /// [`crate::SpaceBinding`]; [`RuntimeError::Untunable`] when the
    /// space has *no* candidate that validates and compiles for this
    /// session's machine and shape (e.g. the program was built for a
    /// different machine — [`MappingPolicy::Autotune`] launches fall
    /// back to the program's own mapping on this error instead of
    /// surfacing it). Candidates the compiler's allocator rejects are
    /// skipped — a space's `validate` is a cheap estimate, the compiler
    /// is the authority. Simulation failures still propagate.
    pub fn autotune(&mut self, program: &Program) -> Result<TunedMapping, RuntimeError> {
        self.autotune_with(program, TunerBudget::Exhaustive)
    }

    /// [`Session::autotune`] under an explicit [`TunerBudget`].
    ///
    /// [`TunerBudget::Exhaustive`] is exactly [`Session::autotune`].
    /// Under [`TunerBudget::TopK`]`(k)` the sweep first prices every
    /// candidate with the analytical cost model and keeps only the `k`
    /// best-predicted (deterministic total order: predicted cycles by
    /// `total_cmp`, then the encoded config as tie break; unpriceable
    /// candidates are never pruned). If the session's [`TuningTable`]
    /// holds a winner for the *same kernel and machine at a neighboring
    /// shape* ([`TuningTable::nearest_neighbor`]), that winner is added
    /// to the timed set as a transfer seed — under `TopK(0)` it is the
    /// *only* candidate timed, so warm fleets re-tune new shapes at the
    /// cost of one simulation. The kept candidates then flow through
    /// the same serial or parallel sweep machinery in enumeration
    /// order, so `TopK(k >= candidates.len())` reproduces the
    /// exhaustive sweep bit for bit — same winner, same kernel-cache
    /// traffic, same `TunerCandidate` telemetry.
    ///
    /// # Errors
    ///
    /// Same contract as [`Session::autotune`].
    pub fn autotune_with(
        &mut self,
        program: &Program,
        budget: TunerBudget,
    ) -> Result<TunedMapping, RuntimeError> {
        let Some(binding) = program.space.clone() else {
            return Err(RuntimeError::NoMappingSpace {
                entry: program.entry.clone(),
            });
        };
        let machine = self.machine().clone();
        let key = key_for(program, &binding.shape, &machine);
        if let Some(done) = self.tuning.get(&key) {
            // Tables can be hand-edited or imported from elsewhere: a
            // stored winner that no longer validates is re-tuned below
            // (overwriting the bad entry) instead of being built blind.
            if binding
                .space
                .validate(&machine, &binding.shape, &done.config)
                .is_ok()
            {
                let done = done.clone();
                if self.recorder.enabled() {
                    self.recorder.record(Event::TunerSweep {
                        entry: program.entry.clone(),
                        shape: binding.shape.to_string(),
                        candidates: done.candidates,
                        winner: done.config.label(),
                        default_cycles: done.default_cycles,
                        tuned_cycles: done.tuned_cycles,
                        cached: true,
                    });
                }
                return Ok(done);
            }
        }

        let default_cfg = binding.space.default_for(&machine);
        let candidates = binding.space.candidates(&machine, &binding.shape);
        if candidates.is_empty() {
            // Nothing in the space is valid here; surface the default's
            // validation failure as the typed reason.
            let reason = match binding
                .space
                .validate(&machine, &binding.shape, &default_cfg)
            {
                Err(e) => e,
                Ok(()) => cypress_core::CompileError::Unsupported(format!(
                    "mapping space of `{}` emitted no candidates for shape {} on {}",
                    program.entry, binding.shape, machine.name
                )),
            };
            return Err(RuntimeError::Untunable {
                entry: program.entry.clone(),
                reason,
            });
        }

        let total = candidates.len();
        // Guided budgets shrink the candidate list *before* the sweep;
        // the survivors stay in enumeration order, so the sweep below
        // (and every tie break after it) is shared verbatim with the
        // exhaustive path.
        let candidates = match budget {
            TunerBudget::Exhaustive => candidates,
            TunerBudget::TopK(k) => {
                let started = std::time::Instant::now();
                let (kept, pruned, transferred) =
                    self.rank_candidates(&binding, &key, candidates, k);
                self.tuning
                    .note_ranking(total as u64, pruned as u64, transferred);
                if self.recorder.enabled() {
                    self.recorder.record(Event::TunerRanked {
                        entry: program.entry.clone(),
                        shape: binding.shape.to_string(),
                        ranked: total,
                        pruned,
                        transferred,
                        host_ns: started.elapsed().as_nanos() as u64,
                    });
                }
                kept
            }
        };
        // Both sweeps produce `(cycles, config)` in candidate order with
        // bit-identical values, so everything downstream — the tie break,
        // the stats bump, the emitted events — is shared.
        let timed: Vec<(f64, cypress_core::MappingConfig)> = if self.parallelism <= 1 {
            let mut timed = Vec::with_capacity(total);
            for cfg in candidates {
                let report = match self.time_candidate(&binding, &cfg) {
                    Ok(r) => r,
                    // A space's `validate` is a cheap resource estimate; the
                    // compiler's allocator is the authority. Candidates it
                    // rejects are skipped, not errors.
                    Err(RuntimeError::Compile(_)) => continue,
                    Err(e) => return Err(e),
                };
                timed.push((report.cycles, cfg));
            }
            timed
        } else {
            self.sweep_parallel(&binding, candidates)?
        };
        self.tuning.note_sweep(timed.len() as u64);
        if self.recorder.enabled() {
            for (cycles, cfg) in &timed {
                self.recorder.record(Event::TunerCandidate {
                    entry: program.entry.clone(),
                    config: cfg.label(),
                    cycles: *cycles,
                });
            }
        }
        let mut default_cycles = None;
        let mut best: Option<(f64, cypress_core::MappingConfig)> = None;
        for (cycles, cfg) in timed {
            if cfg == default_cfg {
                default_cycles = Some(cycles);
            }
            // Strict `<` keeps the earliest candidate on ties, making the
            // winner independent of session history.
            if best.as_ref().is_none_or(|(c, _)| cycles < *c) {
                best = Some((cycles, cfg));
            }
        }
        let Some((tuned_cycles, config)) = best else {
            return Err(RuntimeError::Untunable {
                entry: program.entry.clone(),
                reason: cypress_core::CompileError::Unsupported(format!(
                    "no candidate of `{}`'s mapping space compiles for shape {} on {}",
                    program.entry, binding.shape, machine.name
                )),
            });
        };
        // When the hand-tuned default is itself invalid for this
        // machine/shape (and therefore was never timed), report the
        // winner as the baseline: speedup 1.0, never a below-1.0 ratio
        // against a mapping that cannot run.
        let default_cycles = default_cycles.unwrap_or(tuned_cycles);
        // Record the model's prediction for the winner on *every*
        // budget — exhaustive sweeps included — so a guided sweep with
        // `top_k >= candidates.len()` produces a bit-identical entry.
        let predicted = binding
            .space
            .estimate(&machine, &binding.shape, &config)
            .map(|e| e.cycles);
        let tuned = TunedMapping {
            entry: binding.space.entry().to_string(),
            config,
            default_cycles,
            tuned_cycles,
            predicted_cycles: predicted.unwrap_or(0.0),
            candidates: total,
            model_version: if predicted.is_some() {
                COST_MODEL_VERSION
            } else {
                0
            },
        };
        self.tuning.insert(key, tuned.clone());
        if self.recorder.enabled() {
            self.recorder.record(Event::TunerSweep {
                entry: program.entry.clone(),
                shape: binding.shape.to_string(),
                candidates: total,
                winner: tuned.config.label(),
                default_cycles: tuned.default_cycles,
                tuned_cycles: tuned.tuned_cycles,
                cached: false,
            });
        }
        Ok(tuned)
    }

    /// The guided tuner's selection pass: price every candidate with
    /// the analytical cost model, keep the `k` best-predicted plus the
    /// transfer seed, and return `(kept in enumeration order, pruned
    /// count, transferred)`.
    ///
    /// Ranking is a deterministic total order — predicted cycles by
    /// `total_cmp`, ties broken by the encoded config — and unpriceable
    /// candidates (`estimate` returned `None`) sort ahead of every
    /// priced one, so a kernel the model does not understand is never
    /// pruned on its account. The transfer seed is the winner of the
    /// nearest tuned neighbor shape, admitted only when it is also one
    /// of *this* shape's enumerated candidates (which keeps, e.g., an
    /// FA3 winner from seeding an FA2 sweep); if the budget is already
    /// full it replaces the worst-ranked survivor.
    fn rank_candidates(
        &self,
        binding: &crate::program::SpaceBinding,
        key: &TuningKey,
        candidates: Vec<cypress_core::MappingConfig>,
        k: usize,
    ) -> (Vec<cypress_core::MappingConfig>, usize, bool) {
        let machine = self.machine();
        let total = candidates.len();
        let priced: Vec<Option<f64>> = candidates
            .iter()
            .map(|cfg| {
                binding
                    .space
                    .estimate(machine, &binding.shape, cfg)
                    .map(|e| e.cycles)
            })
            .collect();
        let mut order: Vec<usize> = (0..total).collect();
        order.sort_by(|&a, &b| match (priced[a], priced[b]) {
            (None, None) => candidates[a].encode().cmp(&candidates[b].encode()),
            (None, Some(_)) => std::cmp::Ordering::Less,
            (Some(_), None) => std::cmp::Ordering::Greater,
            (Some(x), Some(y)) => x
                .total_cmp(&y)
                .then_with(|| candidates[a].encode().cmp(&candidates[b].encode())),
        });
        let keep = k.min(total);
        let mut selected = vec![false; total];
        for &i in order.iter().take(keep) {
            selected[i] = true;
        }
        let neighbor = self
            .tuning
            .nearest_neighbor(binding.space.entry(), key.machine, &key.shape)
            .map(|(_, t)| t.config)
            .filter(|c| candidates.contains(c));
        let transferred = neighbor.is_some();
        if let Some(seed) = neighbor {
            let i = candidates
                .iter()
                .position(|c| *c == seed)
                .expect("seed filtered to enumerated candidates");
            if !selected[i] {
                if keep > 0 {
                    selected[order[keep - 1]] = false;
                }
                selected[i] = true;
            }
        }
        // A zero budget with no transfer seed still times the single
        // best-predicted candidate: a sweep must produce a winner.
        if !selected.iter().any(|&s| s) {
            selected[order[0]] = true;
        }
        let kept: Vec<cypress_core::MappingConfig> = candidates
            .into_iter()
            .zip(&selected)
            .filter_map(|(cfg, &s)| s.then_some(cfg))
            .collect();
        let pruned = total - kept.len();
        (kept, pruned, transferred)
    }

    /// Compile (via the cache) and solo-time one candidate of a space.
    fn time_candidate(
        &mut self,
        binding: &crate::program::SpaceBinding,
        cfg: &cypress_core::MappingConfig,
    ) -> Result<TimingReport, RuntimeError> {
        let (registry, mapping, args) = binding.space.build(&binding.shape, cfg)?;
        let candidate = Program::new(registry, mapping, binding.space.entry(), args);
        let compiled = self.compile(&candidate)?;
        Ok(self
            .simulator
            .run_timing_lowered(&compiled.kernel, &compiled.lowered)?)
    }

    /// The parallel cold sweep: compile every cache-missing candidate on
    /// the worker pool, replay the cache lookups in candidate order (so
    /// hit/miss counters and LRU behavior match the serial sweep
    /// exactly), then solo-time each distinct compiled kernel in
    /// parallel. Returns `(cycles, config)` in candidate order —
    /// bit-identical values to the serial sweep, so the caller's
    /// first-wins tie break picks the same winner. Candidates the
    /// builder or compiler rejects are skipped; simulation failures
    /// propagate.
    fn sweep_parallel(
        &mut self,
        binding: &crate::program::SpaceBinding,
        candidates: Vec<cypress_core::MappingConfig>,
    ) -> Result<Vec<(f64, cypress_core::MappingConfig)>, RuntimeError> {
        use cypress_sim::par;
        // Build every candidate program up front (cheap, pure); builder
        // rejections are skipped like compiler rejections.
        let mut built = Vec::with_capacity(candidates.len());
        for cfg in candidates {
            let Ok((registry, mapping, args)) = binding.space.build(&binding.shape, &cfg) else {
                continue;
            };
            let program = Program::new(registry, mapping, binding.space.entry(), args);
            let fp = self.compiler.fingerprint(
                &program.registry,
                &program.mapping,
                &program.entry,
                &program.args,
            );
            built.push((cfg, program, fp));
        }
        // Compile the cache misses on the worker pool.
        let compiler = &self.compiler;
        let mut queued = HashSet::new();
        let jobs: Vec<(u64, &Program)> = built
            .iter()
            .filter(|(_, _, fp)| self.cache.peek(*fp).is_none() && queued.insert(*fp))
            .map(|(_, program, fp)| (*fp, program))
            .collect();
        let mut precompiled: HashMap<u64, Result<cypress_core::Compiled, _>> =
            par::parallel_map(self.parallelism, jobs, |(fp, p)| {
                let result = compiler.compile_with_fingerprint(
                    &p.registry,
                    &p.mapping,
                    &p.entry,
                    &p.args,
                    fp,
                );
                (fp, result)
            })
            .into_iter()
            .collect();
        // Replay the lookups in candidate order; misses consume the
        // precompiled kernels (recompiling inline only if a bounded cache
        // evicted an entry mid-sweep, exactly as the serial sweep would).
        // The replay also emits the `CacheLookup` (and miss-side
        // `CompilePass`) events in candidate order, so a recorder sees
        // the same stream the serial sweep produces.
        let mut resident = Vec::with_capacity(built.len());
        let mut replays = 0u64;
        for (cfg, program, fp) in built {
            let before = self.recorder.enabled().then(|| self.cache.stats());
            let compiled = self.cache.get_or_compile(fp, || {
                precompiled.remove(&fp).unwrap_or_else(|| {
                    compiler.compile_with_fingerprint(
                        &program.registry,
                        &program.mapping,
                        &program.entry,
                        &program.args,
                        fp,
                    )
                })
            });
            replays += 1;
            match compiled {
                Ok(compiled) => {
                    // Inline (not `record_cache_lookup`): the `compiler`
                    // borrow above lives across the loop, so only
                    // disjoint field borrows of `self` are possible here.
                    if let Some(before) = before {
                        let after = self.cache.stats();
                        let hit = after.hits > before.hits;
                        self.recorder.record(Event::CacheLookup {
                            fingerprint: fp,
                            hit,
                            evictions: after.evictions - before.evictions,
                        });
                        if !hit {
                            for (pass, ns) in &compiled.pass_nanos {
                                self.recorder.record(Event::CompilePass {
                                    pass: pass.clone(),
                                    host_ns: *ns,
                                });
                            }
                        }
                    }
                    resident.push((cfg, compiled));
                }
                // The compiler's allocator is the authority; its
                // rejections are skipped, not errors (and emit nothing,
                // like a failed `Session::compile`).
                Err(_) => continue,
            }
        }
        self.metrics.sweep_replays += replays;
        // Solo-time each distinct kernel on the worker pool. Timing is
        // deterministic per kernel, so deduplication cannot change any
        // candidate's cycles.
        let mut seen = HashSet::new();
        let sims: Vec<Arc<Compiled>> = resident
            .iter()
            .filter(|(_, c)| seen.insert(c.fingerprint))
            .map(|(_, c)| Arc::clone(c))
            .collect();
        let simulator = &self.simulator;
        let timed = par::parallel_map(self.parallelism, sims, |c| {
            (
                c.fingerprint,
                simulator.run_timing_lowered(&c.kernel, &c.lowered),
            )
        });
        let mut cycles_by_fp = HashMap::new();
        for (fp, report) in timed {
            cycles_by_fp.insert(fp, report?.cycles);
        }
        resident
            .into_iter()
            .map(|(cfg, compiled)| {
                let cycles = cycles_by_fp.get(&compiled.fingerprint).ok_or_else(|| {
                    RuntimeError::Internal {
                        what: "a resident autotune candidate was never timed".into(),
                    }
                })?;
                Ok((*cycles, cfg))
            })
            .collect()
    }

    /// The program a node should launch under the session's
    /// [`MappingPolicy`], with its mapping annotation.
    ///
    /// Tuned launches are memoized per [`crate::TuningKey`], so a warm
    /// serving loop pays one fingerprint hash per node — the same as the
    /// default path — instead of re-running the space's builder. A
    /// program whose space has no valid candidate on this machine (e.g.
    /// built for a different machine) falls back to its own mapping.
    fn node_launch(&mut self, program: &Program) -> Result<NodeLaunch, RuntimeError> {
        let budget = match self.mapping_policy {
            MappingPolicy::Default => None,
            MappingPolicy::Autotune => Some(TunerBudget::Exhaustive),
            MappingPolicy::Guided { top_k } => Some(TunerBudget::TopK(top_k)),
        };
        if let Some(budget) = budget {
            if let Some(binding) = program.space.clone() {
                let key = key_for(program, &binding.shape, self.machine());
                if let Some(hit) = self.tuned_launches.get(&key) {
                    return Ok(hit.clone());
                }
                // The fallback launch depends on the program's own
                // mapping (which the tuning key deliberately excludes),
                // so only the *untunability* of the key is memoized; the
                // launch itself routes through the per-program compile.
                if !self.untunable.contains(&key) {
                    match self.autotune_with(program, budget) {
                        Ok(tuned) => {
                            let (registry, mapping, args) =
                                binding.space.build(&binding.shape, &tuned.config)?;
                            let candidate =
                                Program::new(registry, mapping, binding.space.entry(), args);
                            let compiled = self.compile(&candidate)?;
                            // A winner that *is* the hand-tuned default
                            // reads as "default" so reports match the
                            // Default policy's rendering for the
                            // identical kernel.
                            let mapping_label =
                                if tuned.config == binding.space.default_for(self.machine()) {
                                    "default".to_string()
                                } else {
                                    tuned.config.label()
                                };
                            let launch = NodeLaunch {
                                compiled,
                                mapping: mapping_label,
                                tuned_speedup: tuned.speedup(),
                                replaced: Vec::new(),
                                device: 0,
                                comm: None,
                            };
                            self.tuned_launches.insert(key, launch.clone());
                            return Ok(launch);
                        }
                        // No valid candidate here: remember that and run
                        // the program's own mapping.
                        Err(RuntimeError::Untunable { .. }) => {
                            self.untunable.insert(key);
                        }
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        Ok(NodeLaunch {
            compiled: self.compile(program)?,
            mapping: "default".to_string(),
            tuned_speedup: 1.0,
            replaced: Vec::new(),
            device: 0,
            comm: None,
        })
    }

    /// One launch per node, indexed by `NodeId::index()` so the executor
    /// never depends on schedule order for the pairing.
    fn compile_nodes(&mut self, graph: &TaskGraph) -> Result<Vec<NodeLaunch>, RuntimeError> {
        graph
            .nodes()
            .iter()
            .map(|node| {
                let program = node.program.clone();
                self.node_launch(&program)
            })
            .collect()
    }

    /// Plan fusion for `graph` under the session's [`FusionPolicy`]:
    /// `None` when the policy is `Off` or no rewrite fired.
    fn fusion_plan(&mut self, graph: &TaskGraph) -> Result<Option<FusionPlan>, RuntimeError> {
        if self.fusion_policy == FusionPolicy::Off {
            return Ok(None);
        }
        let machine = self.machine().clone();
        let plan = fuse::plan(graph, &machine, self)?;
        self.metrics.fusion_applied += plan.rewrites.len() as u64;
        self.metrics.fusion_declined += plan.declined.len() as u64;
        if self.recorder.enabled() {
            for r in &plan.rewrites {
                self.recorder.record(Event::FusionApplied {
                    rule: r.rule,
                    fused: plan.graph.nodes()[r.fused.index()].name.clone(),
                    replaced: r.replaced.clone(),
                    fused_cycles: r.fused_cycles,
                    unfused_cycles: r.unfused_cycles,
                });
            }
            for d in &plan.declined {
                self.recorder.record(Event::FusionDeclined {
                    rule: d.rule,
                    replaced: d.replaced.clone(),
                    fused_cycles: d.fused_cycles,
                    unfused_cycles: d.unfused_cycles,
                });
            }
        }
        Ok((!plan.is_identity()).then_some(plan))
    }

    /// Compile the launches of a fused plan's graph, annotating each
    /// fused node with the original nodes it replaced.
    fn compile_plan(&mut self, plan: &FusionPlan) -> Result<Vec<NodeLaunch>, RuntimeError> {
        let mut launches = self.compile_nodes(&plan.graph)?;
        for (launch, replaced) in launches.iter_mut().zip(plan.replaced_by_node()) {
            launch.replaced = replaced;
        }
        Ok(launches)
    }

    /// The device topology the session's [`PlacementPolicy`] implies:
    /// one device for [`PlacementPolicy::SingleDevice`], an all-pairs
    /// NVLink mesh for [`PlacementPolicy::Sharded`]
    /// ([`Topology::nvlink`] at one device *is* the single-device
    /// topology, which keeps `Sharded { devices: 1 }` bit-identical).
    fn topology(&self) -> Topology {
        Topology::nvlink(self.machine(), self.placement_policy.devices())
    }

    /// Shard `graph` across `topology`'s devices under the session's
    /// [`PlacementPolicy`]: `None` below two devices (placement is the
    /// identity there), otherwise the [`ShardPlan`] with its telemetry
    /// (one [`Event::ShardAssigned`] per sharded-graph node, one
    /// [`Event::LinkTransfer`] per inserted transfer) and the comm
    /// counters bumped.
    fn shard_plan(
        &mut self,
        graph: &TaskGraph,
        topology: &Topology,
    ) -> Result<Option<ShardPlan>, RuntimeError> {
        if self.placement_policy.devices() < 2 {
            return Ok(None);
        }
        let plan = shard::plan(graph, topology)?;
        self.metrics.comm_launches += plan.transfers.len() as u64;
        self.metrics.link_bytes += plan.transfers.iter().map(|t| t.bytes).sum::<f64>() as u64;
        if self.recorder.enabled() {
            for (i, node) in plan.graph.nodes().iter().enumerate() {
                self.recorder.record(Event::ShardAssigned {
                    node: node.name.clone(),
                    device: plan.device(i),
                });
            }
            for t in &plan.transfers {
                self.recorder.record(Event::LinkTransfer {
                    link: t.link,
                    src: t.src,
                    dst: t.dst,
                    bytes: t.bytes,
                });
            }
        }
        Ok(Some(plan))
    }

    /// Compile the launches of a sharded graph: each launch carries its
    /// device, transfer nodes carry their link accounting, and (when a
    /// fusion plan preceded the shard) fused nodes keep their
    /// `replaced` annotations via the shard's origin map.
    fn compile_shard(
        &mut self,
        shard: &ShardPlan,
        plan: Option<&FusionPlan>,
    ) -> Result<Vec<NodeLaunch>, RuntimeError> {
        let mut launches = self.compile_nodes(&shard.graph)?;
        let replaced = plan.map(FusionPlan::replaced_by_node);
        for (i, launch) in launches.iter_mut().enumerate() {
            launch.device = shard.device(i);
            launch.comm = shard.transfer_of(i).map(|t| CommLaunch {
                link: t.link,
                bytes: t.bytes,
            });
            if let (Some(rep), Some(origin)) = (&replaced, shard.origin(i)) {
                launch.replaced = rep[origin].clone();
            }
        }
        Ok(launches)
    }

    /// The executor-facing bundle of the session's fault axes.
    fn fault_context(&self) -> executor::FaultContext {
        executor::FaultContext {
            plan: self.fault_plan.clone(),
            policy: self.fault_policy,
            node_deadline: self.node_deadline,
            graph_deadline: self.graph_deadline,
        }
    }

    /// Fold one launch's [`Recovery`] section into the session metrics
    /// (all-zero sections — every fault-free launch — are free).
    fn note_recovery(&mut self, recovery: &Recovery) {
        self.metrics.faults_injected += recovery.faults;
        self.metrics.retries += recovery.retries;
        self.metrics.devices_evicted += recovery.evicted_devices.len() as u64;
        self.metrics.nodes_resharded += recovery.resharded_nodes.len() as u64;
    }

    /// Launch `graph` functionally: real data flows along the graph's
    /// tensor-buffer edges, `inputs` supplies the `External` bindings, and
    /// the result holds every retained node's final tensors plus the
    /// whole-graph timing report.
    ///
    /// Under [`FusionPolicy::Auto`] the graph is first rewritten through
    /// the fusion rewriter (see [`crate::fuse`]); results stay addressed
    /// by *this* graph's node ids and are bitwise identical to the
    /// unfused launch, while the report shows the fused launches (each
    /// [`crate::NodeTiming::replaced`] lists the original nodes).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile failure, missing or mis-shaped
    /// inputs, or simulation failure.
    pub fn launch_functional(
        &mut self,
        graph: &TaskGraph,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<GraphRun, RuntimeError> {
        if self.recorder.enabled() {
            self.recorder.record(Event::GraphSubmitted {
                nodes: graph.len(),
                mode: "functional",
            });
        }
        let topology = self.topology();
        let plan = self.fusion_plan(graph)?;
        let fused_graph = plan.as_ref().map_or(graph, |p| &p.graph);
        let shard = self.shard_plan(fused_graph, &topology)?;
        let launches = match (&shard, &plan) {
            (Some(s), p) => self.compile_shard(s, p.as_ref())?,
            (None, Some(p)) => self.compile_plan(p)?,
            (None, None) => self.compile_nodes(graph)?,
        };
        let exec_graph = shard.as_ref().map_or(fused_graph, |s| &s.graph);
        let fault = self.fault_context();
        let run = match executor::run_functional(
            &self.simulator,
            &topology,
            exec_graph,
            &launches,
            inputs,
            &mut self.pool,
            self.policy,
            self.parallelism,
            &fault,
            self.recorder.as_mut(),
        ) {
            Ok(run) => run,
            Err(e) => {
                if let Some(r) = recovery_of(&e) {
                    self.note_recovery(r);
                }
                return Err(e);
            }
        };
        self.note_recovery(&run.report.recovery);
        self.metrics.apply_bytes.merge(run.apply_bytes);
        let run = match &shard {
            Some(s) => executor::remap_run(run, fused_graph, &|i, p| s.target(i, p)),
            None => run,
        };
        Ok(match &plan {
            Some(p) => executor::remap_run(run, graph, &|i, q| p.target(i, q)),
            None => run,
        })
    }

    /// Compile `graph` once into a reusable [`CompiledGraph`] handle:
    /// plan fusion under the session's [`FusionPolicy`], compile every
    /// node (through the kernel cache, autotuning under
    /// [`MappingPolicy::Autotune`]), and freeze the resulting launches.
    /// [`Session::launch_compiled`] then re-binds fresh inputs against
    /// the handle without re-walking the graph or re-consulting the
    /// compiler.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile failure or when the fusion
    /// gate's timing simulation fails.
    pub fn compile_graph(&mut self, graph: &TaskGraph) -> Result<CompiledGraph, RuntimeError> {
        let topology = self.topology();
        let plan = self.fusion_plan(graph)?;
        let fused_graph = plan.as_ref().map_or(graph, |p| &p.graph);
        let shard = self.shard_plan(fused_graph, &topology)?;
        let launches = match (&shard, &plan) {
            (Some(s), p) => self.compile_shard(s, p.as_ref())?,
            (None, Some(p)) => self.compile_plan(p)?,
            (None, None) => self.compile_nodes(graph)?,
        };
        Ok(CompiledGraph {
            graph: graph.clone(),
            plan,
            shard,
            topology,
            launches,
        })
    }

    /// Launch a [`CompiledGraph`] functionally against fresh `inputs`:
    /// the repeat-launch half of [`Session::compile_graph`]. Equivalent
    /// to [`Session::launch_functional`] on the handle's graph — same
    /// tensors, bit for bit — minus all per-launch compilation work.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on missing or mis-shaped inputs, or on
    /// simulation failure.
    pub fn launch_compiled(
        &mut self,
        compiled: &CompiledGraph,
        inputs: &HashMap<String, Tensor>,
    ) -> Result<GraphRun, RuntimeError> {
        if self.recorder.enabled() {
            self.recorder.record(Event::GraphSubmitted {
                nodes: compiled.graph.len(),
                mode: "functional",
            });
        }
        let fault = self.fault_context();
        let run = match executor::run_functional(
            &self.simulator,
            &compiled.topology,
            compiled.exec_graph(),
            &compiled.launches,
            inputs,
            &mut self.pool,
            self.policy,
            self.parallelism,
            &fault,
            self.recorder.as_mut(),
        ) {
            Ok(run) => run,
            Err(e) => {
                if let Some(r) = recovery_of(&e) {
                    self.note_recovery(r);
                }
                return Err(e);
            }
        };
        self.note_recovery(&run.report.recovery);
        self.metrics.apply_bytes.merge(run.apply_bytes);
        let fused_graph = compiled.plan.as_ref().map_or(&compiled.graph, |p| &p.graph);
        let run = match &compiled.shard {
            Some(s) => executor::remap_run(run, fused_graph, &|i, p| s.target(i, p)),
            None => run,
        };
        Ok(match &compiled.plan {
            Some(p) => executor::remap_run(run, &compiled.graph, &|i, q| p.target(i, q)),
            None => run,
        })
    }

    /// Launch `graph` in timing mode: no data moves; the result is the
    /// whole-graph [`GraphReport`] with per-node stream timeline, built
    /// according to the session's [`SchedulePolicy`]. Under
    /// [`MappingPolicy::Autotune`] each node with a mapping space
    /// transparently launches its tuned mapping, and the report's
    /// per-node `mapping` / `tuned_speedup` fields say what ran. Under
    /// [`FusionPolicy::Auto`] the timeline shows the fused launches,
    /// each annotated with the original nodes it replaced.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn launch_timing(&mut self, graph: &TaskGraph) -> Result<GraphReport, RuntimeError> {
        if self.recorder.enabled() {
            self.recorder.record(Event::GraphSubmitted {
                nodes: graph.len(),
                mode: "timing",
            });
        }
        let topology = self.topology();
        let plan = self.fusion_plan(graph)?;
        let fused_graph = plan.as_ref().map_or(graph, |p| &p.graph);
        let shard = self.shard_plan(fused_graph, &topology)?;
        let launches = match (&shard, &plan) {
            (Some(s), p) => self.compile_shard(s, p.as_ref())?,
            (None, Some(p)) => self.compile_plan(p)?,
            (None, None) => self.compile_nodes(graph)?,
        };
        let exec_graph = shard.as_ref().map_or(fused_graph, |s| &s.graph);
        let fault = self.fault_context();
        let report = match executor::run_timing(
            &self.simulator,
            &topology,
            exec_graph,
            &launches,
            self.policy,
            &fault,
            self.recorder.as_mut(),
        ) {
            Ok(report) => report,
            Err(e) => {
                if let Some(r) = recovery_of(&e) {
                    self.note_recovery(r);
                }
                return Err(e);
            }
        };
        self.note_recovery(&report.recovery);
        Ok(report)
    }

    /// Compile (with caching) and functionally run a single program —
    /// the one-kernel special case of [`Session::launch_functional`],
    /// mirroring [`Simulator::run_functional`].
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn run_functional(
        &mut self,
        program: &Program,
        params: Vec<Tensor>,
    ) -> Result<Vec<Tensor>, RuntimeError> {
        let launch = self.node_launch(program)?;
        let run = self.simulator.run_functional_lowered(
            &launch.compiled.kernel,
            &launch.compiled.lowered,
            params,
        )?;
        self.metrics.apply_bytes.merge(run.apply_bytes);
        Ok(run.params)
    }

    /// Compile (with caching) and time a single program (under
    /// [`MappingPolicy::Autotune`], its tuned mapping).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError`] on compile or simulation failure.
    pub fn run_timing(&mut self, program: &Program) -> Result<TimingReport, RuntimeError> {
        let launch = self.node_launch(program)?;
        Ok(self
            .simulator
            .run_timing_lowered(&launch.compiled.kernel, &launch.compiled.lowered)?)
    }

    /// Kernel-cache counters.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Buffer-pool counters.
    #[must_use]
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// Drop all cached kernels, memoized tuned launches, memoized
    /// fusion-gate timings, and pooled buffers (counters and tuning
    /// results are kept).
    pub fn clear(&mut self) {
        self.cache.clear();
        self.tuned_launches.clear();
        self.solo_cycles.clear();
        self.pool.clear();
    }
}

/// The [`Recovery`] section inside a fault-carrying error's partial
/// report, if the error carries one — how failed launches still feed
/// the session's fault metrics.
fn recovery_of(e: &RuntimeError) -> Option<&Recovery> {
    match e {
        RuntimeError::NodeFailed { report, .. }
        | RuntimeError::DeviceLost { report, .. }
        | RuntimeError::DeadlineExceeded { report, .. } => Some(&report.recovery),
        _ => None,
    }
}

impl fuse::FusionGate for Session {
    /// Solo cycles of `program`, compiled through the kernel cache and
    /// memoized per fingerprint: what the fusion rewriter compares. A
    /// program that does not compile (the rewriter's candidate did not
    /// fit this machine after all) yields `None`, vetoing its rewrite.
    fn solo_cycles(&mut self, program: &Program) -> Option<f64> {
        let fp = self.compiler.fingerprint(
            &program.registry,
            &program.mapping,
            &program.entry,
            &program.args,
        );
        if let Some(c) = self.solo_cycles.get(&fp) {
            return Some(*c);
        }
        let compiled = self.compile(program).ok()?;
        let report = self
            .simulator
            .run_timing_lowered(&compiled.kernel, &compiled.lowered)
            .ok()?;
        self.solo_cycles.insert(fp, report.cycles);
        Some(report.cycles)
    }
}
