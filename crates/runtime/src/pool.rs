//! Buffer pool for intermediate tensors.
//!
//! Graph execution allocates one buffer per `Zeros` binding per launch;
//! a serving workload launches the same graph over and over, so those
//! allocations dominate steady-state churn. The pool keeps released
//! buffers keyed by `(dtype, element count)` and hands them back zeroed,
//! turning per-launch allocation into reuse.
//!
//! By default the pool is unbounded, which is right for a server that
//! launches one graph shape forever — but a session serving
//! *shape-diverse* graphs would otherwise park one buffer per distinct
//! `(dtype, element count)` it ever sees. [`BufferPool::set_capacity`]
//! bounds the number of parked buffers (mirroring
//! [`crate::KernelCache::set_capacity`]): when a release would exceed
//! the bound, the least-recently-released buffer is dropped, and
//! [`PoolStats::evicted`] counts how many were let go.

use cypress_tensor::{DType, Tensor};
use std::collections::HashMap;

/// Allocation counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out in total.
    pub acquired: u64,
    /// Acquisitions served by reuse instead of fresh allocation.
    pub reused: u64,
    /// Buffers currently parked in the pool.
    pub free: usize,
    /// Buffers dropped to keep the pool within its capacity.
    pub evicted: u64,
    /// The configured bound on parked buffers (`None` = unbounded).
    pub capacity: Option<usize>,
}

/// A free-list of tensors keyed by `(dtype, element count)`, optionally
/// bounded with least-recently-released eviction.
#[derive(Debug, Default)]
pub struct BufferPool {
    /// Parked buffers per size class, tagged with their release stamp.
    free: HashMap<(DType, usize), Vec<(u64, Tensor)>>,
    /// Monotonic release counter (the LRU clock).
    stamp: u64,
    capacity: Option<usize>,
    acquired: u64,
    reused: u64,
    evicted: u64,
}

impl BufferPool {
    /// An empty, unbounded pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Bound the pool to at most `capacity` parked buffers (`None`
    /// removes the bound). Shrinking below the current occupancy evicts
    /// the least-recently-released buffers immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity;
        if let Some(cap) = capacity {
            while self.free_len() > cap {
                self.evict_oldest();
            }
        }
    }

    /// Builder-style [`BufferPool::set_capacity`].
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.set_capacity(Some(capacity));
        self
    }

    fn free_len(&self) -> usize {
        self.free.values().map(Vec::len).sum()
    }

    /// Drop the parked buffer with the smallest release stamp.
    fn evict_oldest(&mut self) {
        let oldest_key = self
            .free
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .min_by_key(|(_, v)| v.first().map_or(u64::MAX, |(s, _)| *s))
            .map(|(k, _)| *k);
        if let Some(key) = oldest_key {
            if let Some(bucket) = self.free.get_mut(&key) {
                if !bucket.is_empty() {
                    bucket.remove(0);
                    self.evicted += 1;
                }
                if bucket.is_empty() {
                    self.free.remove(&key);
                }
            }
        }
    }

    /// A zeroed `rows x cols` tensor of `dtype`, reusing a released
    /// buffer when one of the right size exists.
    pub fn acquire(&mut self, dtype: DType, rows: usize, cols: usize) -> Tensor {
        self.acquired += 1;
        let key = (dtype, rows * cols);
        if let Some((_, t)) = self.free.get_mut(&key).and_then(Vec::pop) {
            self.reused += 1;
            let mut data = t.into_data();
            data.fill(0.0);
            // Same element count, so the reshape reuses the storage; a
            // mismatch (impossible by the free-list key) falls back to a
            // fresh allocation rather than panicking.
            return Tensor::from_data(dtype, &[rows, cols], data)
                .unwrap_or_else(|_| Tensor::zeros(dtype, &[rows, cols]));
        }
        Tensor::zeros(dtype, &[rows, cols])
    }

    /// Return a buffer to the pool for later reuse, evicting the
    /// least-recently-released buffer when the pool is at capacity.
    pub fn release(&mut self, t: Tensor) {
        if self.capacity == Some(0) {
            self.evicted += 1;
            return;
        }
        if let Some(cap) = self.capacity {
            while self.free_len() >= cap {
                self.evict_oldest();
            }
        }
        let key = (t.dtype(), t.num_elements());
        self.stamp += 1;
        self.free.entry(key).or_default().push((self.stamp, t));
    }

    /// Counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquired: self.acquired,
            reused: self.reused,
            free: self.free_len(),
            evicted: self.evicted,
            capacity: self.capacity,
        }
    }

    /// Drop all parked buffers (counters and the capacity are kept).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn released_buffers_are_reused_and_zeroed() {
        let mut pool = BufferPool::new();
        let mut t = pool.acquire(DType::F16, 8, 8);
        t.data_mut()[0] = 5.0;
        pool.release(t);
        // Same element count, different shape: still reusable.
        let t2 = pool.acquire(DType::F16, 4, 16);
        assert_eq!(t2.shape(), &[4, 16]);
        assert!(
            t2.data().iter().all(|&v| v == 0.0),
            "reused buffers are zeroed"
        );
        let stats = pool.stats();
        assert_eq!((stats.acquired, stats.reused, stats.free), (2, 1, 0));
    }

    #[test]
    fn mismatched_sizes_allocate_fresh() {
        let mut pool = BufferPool::new();
        let t = pool.acquire(DType::F32, 4, 4);
        pool.release(t);
        let _big = pool.acquire(DType::F32, 8, 8);
        assert_eq!(pool.stats().reused, 0);
        assert_eq!(pool.stats().free, 1);
    }

    #[test]
    fn bounded_pool_evicts_least_recently_released() {
        let mut pool = BufferPool::new().with_capacity(2);
        // Three distinct size classes: the first released gets evicted.
        for size in [4usize, 8, 16] {
            let t = pool.acquire(DType::F16, size, 1);
            pool.release(t);
        }
        let stats = pool.stats();
        assert_eq!(stats.free, 2);
        assert_eq!(stats.evicted, 1);
        assert_eq!(stats.capacity, Some(2));
        // The 4-element class is gone; the other two still serve reuse.
        assert_eq!(pool.acquire(DType::F16, 8, 1).num_elements(), 8);
        assert_eq!(pool.stats().reused, 1);
        let before = pool.stats().reused;
        let _fresh = pool.acquire(DType::F16, 4, 1);
        assert_eq!(pool.stats().reused, before, "evicted class allocates fresh");
    }

    #[test]
    fn zero_capacity_parks_nothing() {
        let mut pool = BufferPool::new().with_capacity(0);
        let t = pool.acquire(DType::F16, 4, 4);
        pool.release(t);
        assert_eq!(pool.stats().free, 0);
        assert_eq!(pool.stats().evicted, 1);
    }

    #[test]
    fn shrinking_capacity_evicts_immediately() {
        let mut pool = BufferPool::new();
        for size in [4usize, 8, 16, 32] {
            let t = pool.acquire(DType::F16, size, 1);
            pool.release(t);
        }
        assert_eq!(pool.stats().free, 4);
        pool.set_capacity(Some(1));
        assert_eq!(pool.stats().free, 1);
        assert_eq!(pool.stats().evicted, 3);
    }
}
