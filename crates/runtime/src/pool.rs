//! Buffer pool for intermediate tensors.
//!
//! Graph execution allocates one buffer per `Zeros` binding per launch;
//! a serving workload launches the same graph over and over, so those
//! allocations dominate steady-state churn. The pool keeps released
//! buffers keyed by `(dtype, element count)` and hands them back zeroed,
//! turning per-launch allocation into reuse.

use cypress_tensor::{DType, Tensor};
use std::collections::HashMap;

/// Allocation counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out in total.
    pub acquired: u64,
    /// Acquisitions served by reuse instead of fresh allocation.
    pub reused: u64,
    /// Buffers currently parked in the pool.
    pub free: usize,
}

/// A free-list of tensors keyed by `(dtype, element count)`.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: HashMap<(DType, usize), Vec<Tensor>>,
    acquired: u64,
    reused: u64,
}

impl BufferPool {
    /// An empty pool.
    #[must_use]
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// A zeroed `rows x cols` tensor of `dtype`, reusing a released
    /// buffer when one of the right size exists.
    pub fn acquire(&mut self, dtype: DType, rows: usize, cols: usize) -> Tensor {
        self.acquired += 1;
        let key = (dtype, rows * cols);
        if let Some(t) = self.free.get_mut(&key).and_then(Vec::pop) {
            self.reused += 1;
            let mut data = t.into_data();
            data.fill(0.0);
            // Same element count; the reshape reuses the storage.
            return Tensor::from_data(dtype, &[rows, cols], data)
                .expect("pooled buffer has matching element count");
        }
        Tensor::zeros(dtype, &[rows, cols])
    }

    /// Return a buffer to the pool for later reuse.
    pub fn release(&mut self, t: Tensor) {
        let key = (t.dtype(), t.num_elements());
        self.free.entry(key).or_default().push(t);
    }

    /// Counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            acquired: self.acquired,
            reused: self.reused,
            free: self.free.values().map(Vec::len).sum(),
        }
    }

    /// Drop all parked buffers (counters are kept).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn released_buffers_are_reused_and_zeroed() {
        let mut pool = BufferPool::new();
        let mut t = pool.acquire(DType::F16, 8, 8);
        t.data_mut()[0] = 5.0;
        pool.release(t);
        // Same element count, different shape: still reusable.
        let t2 = pool.acquire(DType::F16, 4, 16);
        assert_eq!(t2.shape(), &[4, 16]);
        assert!(
            t2.data().iter().all(|&v| v == 0.0),
            "reused buffers are zeroed"
        );
        let stats = pool.stats();
        assert_eq!((stats.acquired, stats.reused, stats.free), (2, 1, 0));
    }

    #[test]
    fn mismatched_sizes_allocate_fresh() {
        let mut pool = BufferPool::new();
        let t = pool.acquire(DType::F32, 4, 4);
        pool.release(t);
        let _big = pool.acquire(DType::F32, 8, 8);
        assert_eq!(pool.stats().reused, 0);
        assert_eq!(pool.stats().free, 1);
    }
}
