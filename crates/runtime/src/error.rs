//! Errors of the task-graph runtime.

use cypress_core::CompileError;
use cypress_sim::SimError;
use cypress_tensor::DType;
use std::fmt;

/// Anything that can go wrong building or executing a task graph.
#[derive(Debug)]
pub enum RuntimeError {
    /// A node's program failed to compile.
    Compile(CompileError),
    /// The simulator rejected or failed a launch.
    Sim(SimError),
    /// A node referenced a node id the graph does not contain.
    UnknownNode {
        /// The offending id.
        id: usize,
    },
    /// A node was added with the wrong number of bindings.
    ArityMismatch {
        /// Node name.
        node: String,
        /// Parameters the program declares.
        expected: usize,
        /// Bindings supplied.
        actual: usize,
    },
    /// A tensor-buffer edge connects parameters of different shapes.
    ShapeMismatch {
        /// Consumer node name.
        node: String,
        /// Consumer parameter name.
        param: String,
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Bound `(rows, cols)`.
        actual: (usize, usize),
    },
    /// A tensor-buffer edge connects parameters of different dtypes.
    DtypeMismatch {
        /// Consumer node name.
        node: String,
        /// Consumer parameter name.
        param: String,
        /// The consumer parameter's dtype.
        expected: DType,
        /// The producer parameter's dtype.
        actual: DType,
    },
    /// An `Output` binding referenced a parameter index the producer
    /// doesn't have.
    BadOutputIndex {
        /// Producer node name.
        node: String,
        /// The out-of-range parameter index.
        param: usize,
    },
    /// A functional launch was missing an external input tensor.
    MissingInput {
        /// The unbound input name.
        name: String,
    },
    /// An external tensor's shape or dtype didn't match the parameter.
    BadInput {
        /// The input name.
        name: String,
        /// Why it was rejected.
        reason: String,
    },
    /// Two graph nodes were given the same name.
    DuplicateNode {
        /// The repeated name.
        name: String,
    },
    /// Autotuning was requested for a program that carries no
    /// [`crate::SpaceBinding`] (only programs built via
    /// [`crate::Program::from_space`] / `with_space` are tunable).
    NoMappingSpace {
        /// The program's entry task.
        entry: String,
    },
    /// A program's mapping space has no valid candidate for the
    /// session's machine and shape (e.g. the program was built for a
    /// different machine). `MappingPolicy::Autotune` launches fall back
    /// to the program's own mapping instead of surfacing this.
    Untunable {
        /// The program's entry task.
        entry: String,
        /// Why the space's default mapping is invalid here.
        reason: CompileError,
    },
    /// A serialized [`crate::TuningTable`] could not be read.
    BadTuningTable {
        /// What was wrong.
        reason: String,
    },
    /// A sharded launch's device topology was rejected: the topology
    /// failed its own validation, or a cross-device edge connects two
    /// devices with no link between them.
    BadTopology {
        /// What was wrong.
        what: String,
    },
    /// A node failed under the fault policy: a transient injected fault
    /// under [`crate::FaultPolicy::FailFast`], or a node whose retry
    /// budget ran out under [`crate::FaultPolicy::Retry`]. Carries the
    /// partial [`crate::GraphReport`] so callers can see how far the
    /// schedule got.
    NodeFailed {
        /// The failed node's name.
        node: String,
        /// The device the failing attempt ran on.
        device: usize,
        /// Attempts consumed (1 under `FailFast`).
        attempts: u32,
        /// The partial timing report up to the failure.
        report: Box<crate::GraphReport>,
    },
    /// A simulated device was lost permanently and the fault policy
    /// could not (or was not allowed to) recover: `FailFast`, or no
    /// surviving device to re-shard onto. Carries the partial
    /// [`crate::GraphReport`].
    DeviceLost {
        /// The dead device.
        device: usize,
        /// The cycle it died at.
        cycle: f64,
        /// The partial timing report up to the loss.
        report: Box<crate::GraphReport>,
    },
    /// A per-node or whole-graph deadline expired mid-schedule (see
    /// [`crate::Session::set_node_deadline`] /
    /// [`crate::Session::set_graph_deadline`]). Carries the partial
    /// [`crate::GraphReport`].
    DeadlineExceeded {
        /// What missed the deadline: a node name, or `"graph"`.
        what: String,
        /// The deadline, in cycles.
        deadline: f64,
        /// The cycle the deadline was discovered blown at.
        at: f64,
        /// The partial timing report up to the deadline.
        report: Box<crate::GraphReport>,
    },
    /// A runtime invariant was violated (a bug in the runtime itself,
    /// not in the caller's graph) — surfaced as a typed error instead
    /// of a panic so long-lived serving sessions degrade gracefully.
    Internal {
        /// Which invariant broke.
        what: String,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Compile(e) => write!(f, "compile error: {e}"),
            RuntimeError::Sim(e) => write!(f, "simulation error: {e}"),
            RuntimeError::UnknownNode { id } => write!(f, "unknown node id {id}"),
            RuntimeError::ArityMismatch { node, expected, actual } => write!(
                f,
                "node `{node}`: program declares {expected} parameters but {actual} bindings were supplied"
            ),
            RuntimeError::ShapeMismatch { node, param, expected, actual } => write!(
                f,
                "node `{node}` parameter `{param}`: expected {}x{}, bound {}x{}",
                expected.0, expected.1, actual.0, actual.1
            ),
            RuntimeError::DtypeMismatch {
                node,
                param,
                expected,
                actual,
            } => write!(
                f,
                "node `{node}` parameter `{param}`: expected dtype {expected:?}, bound {actual:?}"
            ),
            RuntimeError::BadOutputIndex { node, param } => {
                write!(f, "node `{node}` has no parameter index {param}")
            }
            RuntimeError::MissingInput { name } => {
                write!(f, "functional launch missing external input `{name}`")
            }
            RuntimeError::BadInput { name, reason } => {
                write!(f, "external input `{name}` rejected: {reason}")
            }
            RuntimeError::DuplicateNode { name } => {
                write!(f, "duplicate node name `{name}`")
            }
            RuntimeError::NoMappingSpace { entry } => write!(
                f,
                "program `{entry}` carries no mapping space; build it with \
                 Program::from_space (or attach one with with_space) to autotune"
            ),
            RuntimeError::Untunable { entry, reason } => write!(
                f,
                "program `{entry}` has no valid mapping candidate on this machine: {reason}"
            ),
            RuntimeError::BadTuningTable { reason } => {
                write!(f, "bad tuning table: {reason}")
            }
            RuntimeError::BadTopology { what } => {
                write!(f, "bad device topology: {what}")
            }
            RuntimeError::NodeFailed {
                node,
                device,
                attempts,
                ..
            } => write!(
                f,
                "node `{node}` failed on device {device} after {attempts} attempt(s)"
            ),
            RuntimeError::DeviceLost { device, cycle, .. } => {
                write!(f, "device {device} lost at cycle {cycle} and not recovered")
            }
            RuntimeError::DeadlineExceeded {
                what, deadline, at, ..
            } => write!(
                f,
                "deadline of {deadline} cycles for `{what}` exceeded at cycle {at}"
            ),
            RuntimeError::Internal { what } => {
                write!(f, "runtime invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Compile(e) => Some(e),
            RuntimeError::Sim(e) => Some(e),
            RuntimeError::Untunable { reason, .. } => Some(reason),
            _ => None,
        }
    }
}

impl From<CompileError> for RuntimeError {
    fn from(e: CompileError) -> Self {
        RuntimeError::Compile(e)
    }
}

impl From<SimError> for RuntimeError {
    fn from(e: SimError) -> Self {
        RuntimeError::Sim(e)
    }
}
