//! Whole-graph timing reports with per-node stream timelines.
//!
//! A [`GraphReport`] describes one simulated execution of a task graph.
//! Every node carries the simulated stream it ran on and its `[start,
//! end)` interval in cycles since graph launch, so overlap (or its
//! absence) is directly observable. Three aggregate numbers summarize the
//! schedule:
//!
//! - [`GraphReport::makespan`] — when the last node retired. Under the
//!   serial policy this equals the serial sum; under a concurrent policy
//!   it shrinks toward the critical path as independent nodes overlap.
//! - [`GraphReport::critical_path`] — the longest dependency chain of
//!   solo node makespans: no schedule, however many streams, can beat it.
//! - [`GraphReport::serial_sum`] — the cost of launching every node
//!   back-to-back: what a one-stream schedule pays.
//!
//! Any valid schedule satisfies `critical_path <= makespan <=
//! serial_sum`; the property suite locks that invariant down for
//! generated graphs.

use cypress_sim::TimingReport;

/// Timing of one node's launch inside a graph execution.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    /// The node's display name.
    pub node: String,
    /// Simulated device the node ran on (0 under
    /// [`crate::PlacementPolicy::SingleDevice`]; transfer nodes report
    /// their destination device).
    pub device: usize,
    /// Simulated stream the node was assigned to on its device (0 under
    /// the serial policy).
    pub stream: usize,
    /// Launch cycle, relative to the graph launch.
    pub start: f64,
    /// Retire cycle, relative to the graph launch.
    pub end: f64,
    /// The mapping the session launched this node with: `"default"`
    /// under [`crate::MappingPolicy::Default`], the winning candidate's
    /// label under [`crate::MappingPolicy::Autotune`].
    pub mapping: String,
    /// Solo-cycle speedup of the launched mapping over the hand-tuned
    /// default (1.0 when the default ran; never below 1.0, since the
    /// default is always one of the tuner's candidates).
    pub tuned_speedup: f64,
    /// When this launch came from the fusion rewriter
    /// ([`crate::FusionPolicy::Auto`]): the names of the original graph
    /// nodes it replaced, in original insertion order. Empty for nodes
    /// that launched as written — so timelines always say which written
    /// nodes each launch accounts for.
    pub replaced: Vec<String>,
    /// The simulator's solo report for this launch (what the node costs
    /// with the device to itself).
    pub report: TimingReport,
}

/// What the fault layer did during one graph execution.
///
/// All-zero (the [`Default`]) for a fault-free run — including every run
/// under [`crate::FaultPolicy::FailFast`], which never recovers. Under
/// [`crate::FaultPolicy::Retry`] the counters record the injected faults
/// the schedule absorbed, and [`Recovery::overhead_cycles`] is the
/// makespan paid over the fault-free schedule of the same graph.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Recovery {
    /// Injected faults the schedule observed (transient + device loss).
    pub faults: u64,
    /// Node attempts re-executed after a transient fault.
    pub retries: u64,
    /// Devices permanently lost mid-run, in eviction order.
    pub evicted_devices: Vec<usize>,
    /// Nodes re-planned onto surviving devices after an eviction, in
    /// re-plan order (includes re-routed pending transfers).
    pub resharded_nodes: Vec<String>,
    /// Makespan paid over the fault-free schedule, in cycles (0.0 when
    /// nothing faulted).
    pub overhead_cycles: f64,
}

/// Timing of a whole graph execution, with per-node stream timeline.
///
/// Nodes appear in completion order (for the serial policy that is the
/// deterministic topological schedule). Launch overheads are included in
/// each node's interval — the same place the paper's §5.3
/// persistent-kernel effect shows up at graph scale.
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Per-node timing, in completion order.
    pub nodes: Vec<NodeTiming>,
    /// Cycle at which the last node retired.
    pub makespan: f64,
    /// [`GraphReport::makespan`] in seconds at the machine clock.
    pub seconds: f64,
    /// Longest dependency chain of solo node makespans, in cycles.
    pub critical_path: f64,
    /// Streams the schedule was allowed to use per device (1 under the
    /// serial policy).
    pub streams: usize,
    /// Devices the schedule placed nodes on (1 under
    /// [`crate::PlacementPolicy::SingleDevice`]).
    pub devices: usize,
    /// What the fault layer did (all-zero for a fault-free run).
    pub recovery: Recovery,
}

impl GraphReport {
    /// Graph makespan in cycles (alias of [`GraphReport::makespan`]).
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.makespan
    }

    /// What the schedule would cost on one stream: the sum of the solo
    /// node makespans.
    #[must_use]
    pub fn serial_sum(&self) -> f64 {
        self.nodes.iter().map(|n| n.report.cycles).sum()
    }

    /// `serial_sum / makespan` — 1.0 means no overlap was achieved.
    #[must_use]
    pub fn overlap_speedup(&self) -> f64 {
        if self.makespan > 0.0 {
            self.serial_sum() / self.makespan
        } else {
            1.0
        }
    }

    /// Total discrete events processed across the solo node simulations.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.nodes.iter().map(|n| n.report.events).sum()
    }

    /// Device FLOPs executed across all launches (Tensor Core + SIMT).
    #[must_use]
    pub fn device_flops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.report.tc_flops + n.report.simt_flops)
            .sum()
    }

    /// Whole-graph TFLOP/s for an externally supplied algorithmic FLOP
    /// count (the figure-style number), using the schedule's makespan.
    #[must_use]
    pub fn tflops_for(&self, algorithmic_flops: f64) -> f64 {
        if self.seconds > 0.0 {
            algorithmic_flops / self.seconds / 1e12
        } else {
            0.0
        }
    }

    /// The timing of the node called `name`, if it ran.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<&TimingReport> {
        self.nodes
            .iter()
            .find(|n| n.node == name)
            .map(|n| &n.report)
    }

    /// The timeline entry of the node called `name`, if it ran.
    #[must_use]
    pub fn timeline(&self, name: &str) -> Option<&NodeTiming> {
        self.nodes.iter().find(|n| n.node == name)
    }

    /// The report's timeline as telemetry events: one
    /// [`crate::telemetry::Event::NodeSpan`] per node, in completion
    /// order — exactly the spans a session-attached recorder receives
    /// after a graph launch, and exactly what
    /// [`crate::TraceSink::chrome_json`] serializes. [`GraphReport::breakdown`]
    /// and [`GraphReport::breakdown_csv`] render on top of this stream.
    #[must_use]
    pub fn trace_events(&self) -> Vec<crate::telemetry::Event> {
        self.nodes
            .iter()
            .map(|n| crate::telemetry::Event::NodeSpan {
                node: n.node.clone(),
                stream: n.stream,
                start: n.start,
                end: n.end,
            })
            .collect()
    }

    /// A human-readable per-node breakdown with the stream timeline,
    /// rendered from [`GraphReport::trace_events`].
    #[must_use]
    pub fn breakdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let total = self.makespan.max(1.0);
        // Spans and nodes are in the same (completion) order by
        // construction, so zipping pairs each span with its annotations
        // even when node names repeat.
        for (ev, n) in self.trace_events().iter().zip(&self.nodes) {
            let crate::telemetry::Event::NodeSpan {
                node,
                stream,
                start,
                end,
            } = ev
            else {
                continue;
            };
            let share = 100.0 * n.report.cycles / total;
            let mapping = if n.mapping == "default" {
                String::new()
            } else {
                format!("  [{} {:.2}x]", n.mapping, n.tuned_speedup)
            };
            let fused = if n.replaced.is_empty() {
                String::new()
            } else {
                format!("  [fused: {}]", n.replaced.join(", "))
            };
            let _ = writeln!(
                out,
                "{:<24} d{}/s{} [{:>12.0}, {:>12.0}) {:>14.0} cycles ({:>5.1}%)  {:>8.1} TFLOP/s achieved{mapping}{fused}",
                node, n.device, stream, start, end, n.report.cycles, share, n.report.achieved_tflops
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>14.0} cycles ({:.3} ms) | critical path {:.0} | serial sum {:.0} | {:.2}x overlap",
            "makespan",
            self.makespan,
            self.seconds * 1e3,
            self.critical_path,
            self.serial_sum(),
            self.overlap_speedup()
        );
        out
    }

    /// [`GraphReport::breakdown`] as machine-readable CSV: a header
    /// line, then one row per node in completion order. Numeric fields
    /// print in Rust's shortest round-trip form (no display rounding),
    /// so downstream tooling sees the exact simulated values; text
    /// fields are quoted when they contain commas, quotes, or newlines.
    #[must_use]
    pub fn breakdown_csv(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from(
            "node,device,stream,start,end,cycles,share_pct,achieved_tflops,mapping,tuned_speedup,fused\n",
        );
        let total = self.makespan.max(1.0);
        for (ev, n) in self.trace_events().iter().zip(&self.nodes) {
            let crate::telemetry::Event::NodeSpan {
                node,
                stream,
                start,
                end,
            } = ev
            else {
                continue;
            };
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                csv_field(node),
                n.device,
                stream,
                start,
                end,
                n.report.cycles,
                100.0 * n.report.cycles / total,
                n.report.achieved_tflops,
                csv_field(&n.mapping),
                n.tuned_speedup,
                csv_field(&n.replaced.join(", "))
            );
        }
        out
    }
}

/// Quote a CSV field when it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(name: &str, stream: usize, start: f64, cycles: f64) -> NodeTiming {
        NodeTiming {
            node: name.into(),
            device: 0,
            stream,
            start,
            end: start + cycles,
            mapping: "default".into(),
            tuned_speedup: 1.0,
            replaced: Vec::new(),
            report: TimingReport {
                kernel: name.into(),
                cycles,
                seconds: cycles / 1e9,
                tc_flops: 1e6,
                simt_flops: 0.0,
                achieved_tflops: 1.0,
                tc_utilization: 0.5,
                tma_utilization: 0.5,
                simt_utilization: 0.1,
                ctas: 1,
                simulated_ctas: 1,
                active_sms: 1,
                ctas_per_sm: 1,
                load_bytes: 1e3,
                store_bytes: 1e3,
                l2_hit: 0.5,
                events: 10,
            },
        }
    }

    fn overlapped() -> GraphReport {
        GraphReport {
            nodes: vec![node("a", 0, 0.0, 1000.0), node("b", 1, 0.0, 800.0)],
            makespan: 1000.0,
            seconds: 1000.0 / 1e9,
            critical_path: 1000.0,
            streams: 2,
            devices: 1,
            recovery: Recovery::default(),
        }
    }

    #[test]
    fn aggregates_read_the_timeline() {
        let r = overlapped();
        assert_eq!(r.cycles(), 1000.0);
        assert_eq!(r.serial_sum(), 1800.0);
        assert!((r.overlap_speedup() - 1.8).abs() < 1e-12);
        assert_eq!(r.events(), 20);
        assert_eq!(r.timeline("b").unwrap().stream, 1);
        assert!(r.critical_path <= r.makespan && r.makespan <= r.serial_sum());
    }

    #[test]
    fn breakdown_shows_streams_and_makespan() {
        let text = overlapped().breakdown();
        assert!(text.contains("d0/s1"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("1.80x overlap"), "{text}");
    }

    #[test]
    fn trace_events_mirror_the_timeline() {
        let evs = overlapped().trace_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[1],
            crate::telemetry::Event::NodeSpan {
                node: "b".into(),
                stream: 1,
                start: 0.0,
                end: 800.0,
            }
        );
    }

    #[test]
    fn csv_rows_carry_exact_values() {
        let csv = overlapped().breakdown_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3, "{csv}");
        assert_eq!(
            lines[0],
            "node,device,stream,start,end,cycles,share_pct,achieved_tflops,mapping,tuned_speedup,fused"
        );
        assert_eq!(lines[1], "a,0,0,0,1000,1000,100,1,default,1,");
        assert_eq!(lines[2], "b,0,1,0,800,800,80,1,default,1,");
    }

    #[test]
    fn csv_quotes_fields_with_delimiters() {
        let mut r = overlapped();
        r.nodes[0].replaced = vec!["up".into(), "down".into()];
        let csv = r.breakdown_csv();
        assert!(csv.contains("\"up, down\""), "{csv}");
    }
}
