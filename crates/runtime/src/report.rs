//! Whole-graph timing reports with per-node breakdown.

use cypress_sim::TimingReport;

/// Timing of one node's launch inside a graph execution.
#[derive(Debug, Clone)]
pub struct NodeTiming {
    /// The node's display name.
    pub node: String,
    /// The simulator's report for this launch.
    pub report: TimingReport,
}

/// Timing of a whole graph execution: kernels run in dependency order, so
/// the graph makespan is the sum of per-launch makespans (launch overheads
/// included — the same place the paper's §5.3 persistent-kernel effect
/// shows up at graph scale).
#[derive(Debug, Clone, Default)]
pub struct GraphReport {
    /// Per-node timing, in execution order.
    pub nodes: Vec<NodeTiming>,
}

impl GraphReport {
    /// Total makespan in cycles.
    #[must_use]
    pub fn cycles(&self) -> f64 {
        self.nodes.iter().map(|n| n.report.cycles).sum()
    }

    /// Total makespan in seconds.
    #[must_use]
    pub fn seconds(&self) -> f64 {
        self.nodes.iter().map(|n| n.report.seconds).sum()
    }

    /// Total discrete events processed.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.nodes.iter().map(|n| n.report.events).sum()
    }

    /// Device FLOPs executed across all launches (Tensor Core + SIMT).
    #[must_use]
    pub fn device_flops(&self) -> f64 {
        self.nodes
            .iter()
            .map(|n| n.report.tc_flops + n.report.simt_flops)
            .sum()
    }

    /// Whole-graph TFLOP/s for an externally supplied algorithmic FLOP
    /// count (the figure-style number).
    #[must_use]
    pub fn tflops_for(&self, algorithmic_flops: f64) -> f64 {
        let s = self.seconds();
        if s > 0.0 {
            algorithmic_flops / s / 1e12
        } else {
            0.0
        }
    }

    /// The timing of the node called `name`, if it ran.
    #[must_use]
    pub fn node(&self, name: &str) -> Option<&TimingReport> {
        self.nodes
            .iter()
            .find(|n| n.node == name)
            .map(|n| &n.report)
    }

    /// A human-readable per-node breakdown.
    #[must_use]
    pub fn breakdown(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let total = self.cycles().max(1.0);
        for n in &self.nodes {
            let share = 100.0 * n.report.cycles / total;
            let _ = writeln!(
                out,
                "{:<24} {:>14.0} cycles ({:>5.1}%)  {:>8.1} TFLOP/s achieved",
                n.node, n.report.cycles, share, n.report.achieved_tflops
            );
        }
        let _ = writeln!(
            out,
            "{:<24} {:>14.0} cycles ({:.3} ms)",
            "total",
            self.cycles(),
            self.seconds() * 1e3
        );
        out
    }
}
