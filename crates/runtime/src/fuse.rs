//! Automatic graph-level kernel fusion: rewrite producer→consumer
//! patterns in a [`TaskGraph`] into the paper's fused kernels.
//!
//! The paper's headline kernels are *fusions* of primitive tasks —
//! Dual-GEMM (Fig. 13c) and GEMM+Reduction (Fig. 13d) exist precisely
//! to avoid an intermediate HBM round trip and a second kernel launch.
//! This module closes the loop at the graph level: a `TaskGraph` built
//! from primitive nodes is pattern-matched and rewritten so those fused
//! kernels fire automatically under [`FusionPolicy::Auto`], while
//! [`FusionPolicy::Off`] (the default) leaves every launch exactly as
//! written.
//!
//! # Rewrite rules
//!
//! Both rules are *semantics-preserving to the bit*: the functional
//! simulator accumulates GEMM elements in ascending-`k` order in
//! unrounded f32 fragments and rounds only at f16 materializations, and
//! each fused kernel keeps exactly the same rounding points as the
//! launches it replaces (see the kernel docs of
//! [`cypress_core::kernels::chain`] and the property suite in
//! `tests/fusion.rs`).
//!
//! 1. **GEMM→GEMM (chained dual-GEMM)** — a `gemm` node whose `C`
//!    output feeds exactly one consumer: the `A` slot of another `gemm`
//!    node, with the producer unretained (the intermediate is dead).
//!    The pair rewrites to one [`cypress_core::kernels::chain`] launch
//!    `C = (A·B1)·B2` that keeps the intermediate band in shared
//!    memory.
//! 2. **GEMM + row-reduction (GEMM+Reduction)** — a `gemm` node and a
//!    [`cypress_core::kernels::reduction`] node reading the *same* `A`
//!    tensor (the Fig. 13d dataflow: project a tensor while reducing
//!    it). The pair rewrites to one `gr` launch with `V` pinned to `N`
//!    so the fused partial-sum output keeps the standalone reduction's
//!    `M x 1` shape.
//!
//! # The simulator gates every rewrite
//!
//! Fusion is not always a win: the chain kernel recomputes intermediate
//! row bands once per output-column CTA, which is free while the device
//! is underfilled (the launch-bound regime fusion exists for) but a
//! loss for device-filling shapes. Mirroring the mapping autotuner, the
//! session compiles both sides through the kernel cache, solo-times
//! them with the simulator, and applies a rewrite only when the fused
//! kernel beats the launches it replaces. A candidate whose fused
//! kernel does not compile on the session's machine is skipped, never
//! an error. This makes `makespan(Auto) <= serial_sum(Off)` structural:
//! every applied rewrite strictly helps, and everything else is left
//! alone.
//!
//! Fused nodes flow through the rest of the runtime like any node: they
//! get stable fingerprints in the kernel cache, carry a
//! [`cypress_core::MappingSpace`] so `MappingPolicy::Autotune` tunes
//! them, schedule under any [`crate::SchedulePolicy`], and their
//! [`crate::NodeTiming::replaced`] lists the original node names so
//! timelines stay explainable.

use crate::error::RuntimeError;
use crate::graph::{Binding, NodeId, TaskGraph};
use crate::program::Program;
use cypress_core::kernels::{chain, gemm_reduction};
use cypress_core::{MappingConfig, MappingSpace, Shape};
use cypress_sim::MachineConfig;
use std::sync::Arc;

/// Whether a [`crate::Session`] rewrites graphs before launching them
/// (mirrors [`crate::SchedulePolicy`] and [`crate::MappingPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusionPolicy {
    /// Launch the graph exactly as written — bit-for-bit identical to a
    /// session without a fusion rewriter.
    #[default]
    Off,
    /// Rewrite producer→consumer patterns into the paper's fused
    /// kernels when the simulator confirms the fused launch is faster.
    /// Functional results are bitwise identical to [`FusionPolicy::Off`];
    /// only launch count and timeline change.
    Auto,
}

/// One applied rewrite: which fused node replaced which originals, and
/// the sim-confirmed win margin that justified it.
#[derive(Debug, Clone)]
pub struct FusionRewrite {
    /// The fused node in the rewritten graph.
    pub fused: NodeId,
    /// The rewrite rule that fired (`"dual_chain"` or
    /// `"gemm_reduction"`).
    pub rule: &'static str,
    /// Names of the original nodes the fused launch replaced.
    pub replaced: Vec<String>,
    /// Solo sim cycles of the fused launch (what the gate measured).
    pub fused_cycles: f64,
    /// Summed solo sim cycles of the replaced launches; the win margin
    /// is `unfused_cycles - fused_cycles >= 0` for every applied
    /// rewrite.
    pub unfused_cycles: f64,
}

/// A matched candidate the simulator gate measured and rejected: the
/// fused launch would have been slower than the launches it replaces.
/// Candidates the gate could not evaluate at all (the fused kernel does
/// not compile here) are skipped silently, not declined.
#[derive(Debug, Clone)]
pub struct FusionDecline {
    /// The rewrite rule that matched.
    pub rule: &'static str,
    /// Names of the nodes that stayed unfused.
    pub replaced: Vec<String>,
    /// Solo sim cycles of the rejected fused launch.
    pub fused_cycles: f64,
    /// Summed solo sim cycles of the unfused launches (the faster
    /// side).
    pub unfused_cycles: f64,
}

/// The result of planning fusion over a graph: the rewritten graph plus
/// the bookkeeping to map results back to the original addressing.
#[derive(Debug)]
pub struct FusionPlan {
    /// The rewritten graph ([`FusionPolicy::Off`] never builds one).
    pub graph: TaskGraph,
    /// Per original node, per parameter: where that parameter's buffer
    /// lives in the rewritten graph (`None` for parameters a fused node
    /// no longer materializes, e.g. a dead intermediate).
    param_map: Vec<Vec<Option<(usize, usize)>>>,
    /// The rewrites that fired, in application order.
    pub rewrites: Vec<FusionRewrite>,
    /// Candidates the simulator gate measured and rejected, in match
    /// order (empty for the identity plan).
    pub declined: Vec<FusionDecline>,
}

impl FusionPlan {
    /// `true` when no rewrite fired (the plan is the identity).
    #[must_use]
    pub fn is_identity(&self) -> bool {
        self.rewrites.is_empty()
    }

    /// Where original `(node, param)` lives in the rewritten graph.
    #[must_use]
    pub fn target(&self, node: usize, param: usize) -> Option<(usize, usize)> {
        *self.param_map.get(node)?.get(param)?
    }

    /// Original node names each rewritten node replaced (empty for
    /// nodes that were not fused), indexed by rewritten-graph node.
    #[must_use]
    pub fn replaced_by_node(&self) -> Vec<Vec<String>> {
        let mut out = vec![Vec::new(); self.graph.len()];
        for r in &self.rewrites {
            out[r.fused.index()] = r.replaced.clone();
        }
        out
    }
}

/// A candidate rewrite found by pattern matching, before the simulator
/// gate has decided whether it pays.
struct Candidate {
    rule: &'static str,
    /// Original node indices replaced (sorted ascending).
    members: Vec<usize>,
    /// Insertion position in the original order (the latest member).
    position: usize,
    /// The fused program.
    program: Program,
    /// Fused-node bindings, expressed against *original* node ids.
    bindings: Vec<Binding>,
    /// Full member-parameter correspondence:
    /// `(member node, member param) -> fused param`. Every member
    /// parameter that still has a buffer in the fused launch appears
    /// here — outputs *and* operands — so a retained member exposes the
    /// same tensors under `Auto` as under `Off`; the only slot with no
    /// entry is one bound to a fused-away intermediate, which is never
    /// materialized.
    param_remap: Vec<(usize, usize, usize)>,
    /// Gate measurements, filled in by `plan` once the candidate passes
    /// (zero until then).
    fused_cycles: f64,
    unfused_cycles: f64,
}

/// How the simulator judges one candidate: solo cycles of the fused
/// program vs. the summed solo cycles of the programs it replaces.
/// `None` means "could not evaluate" (e.g. the fused kernel does not
/// compile here) and vetoes the rewrite.
pub(crate) trait FusionGate {
    /// Solo makespan of `program` on the gate's machine, or `None` when
    /// it cannot be compiled or timed.
    fn solo_cycles(&mut self, program: &Program) -> Option<f64>;
}

/// Plan fusion over `graph` for `machine`: match candidates, let `gate`
/// veto the ones that do not pay, and rebuild the graph with the
/// survivors applied.
pub(crate) fn plan(
    graph: &TaskGraph,
    machine: &MachineConfig,
    gate: &mut dyn FusionGate,
) -> Result<FusionPlan, RuntimeError> {
    let candidates = match_candidates(graph, machine);
    let mut accepted: Vec<Candidate> = Vec::new();
    let mut declined: Vec<FusionDecline> = Vec::new();
    let mut used = vec![false; graph.len()];
    for mut cand in candidates {
        if cand.members.iter().any(|&m| used[m]) {
            continue;
        }
        let Some(fused_cycles) = gate.solo_cycles(&cand.program) else {
            continue;
        };
        let mut unfused = 0.0f64;
        let mut ok = true;
        for &m in &cand.members {
            match gate.solo_cycles(&graph.nodes()[m].program) {
                Some(c) => unfused += c,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            continue;
        }
        if fused_cycles > unfused {
            // Measured and lost: worth reporting, unlike candidates the
            // gate could not evaluate at all.
            declined.push(FusionDecline {
                rule: cand.rule,
                replaced: cand
                    .members
                    .iter()
                    .map(|&m| graph.nodes()[m].name.clone())
                    .collect(),
                fused_cycles,
                unfused_cycles: unfused,
            });
            continue;
        }
        for &m in &cand.members {
            used[m] = true;
        }
        cand.fused_cycles = fused_cycles;
        cand.unfused_cycles = unfused;
        accepted.push(cand);
    }
    let mut plan = apply(graph, accepted)?;
    plan.declined = declined;
    Ok(plan)
}

/// The identity plan (used by `FusionPolicy::Off` paths and tests).
pub(crate) fn identity_plan(graph: &TaskGraph) -> FusionPlan {
    FusionPlan {
        graph: graph.clone(),
        param_map: graph
            .nodes()
            .iter()
            .enumerate()
            .map(|(i, n)| (0..n.program.args.len()).map(|p| Some((i, p))).collect())
            .collect(),
        rewrites: Vec::new(),
        declined: Vec::new(),
    }
}

/// Pattern-match all fusion candidates, deterministically (ascending
/// consumer node order, chain rule before reduction rule).
fn match_candidates(graph: &TaskGraph, machine: &MachineConfig) -> Vec<Candidate> {
    let mut out = Vec::new();
    let mut claimed = vec![false; graph.len()];
    let consumers = graph.consumer_counts();
    let total_consumers: Vec<usize> = consumers.iter().map(|c| c.iter().sum()).collect();

    // Rule 1: gemm -> gemm chains (consumer order).
    for j in 0..graph.len() {
        if claimed[j] {
            continue;
        }
        let nj = &graph.nodes()[j];
        if nj.program.entry != "gemm" || nj.program.args.len() != 3 {
            continue;
        }
        let Binding::Output {
            node: src,
            param: 0,
        } = nj.bindings[1]
        else {
            continue;
        };
        let i = src.index();
        if claimed[i] {
            continue;
        }
        let ni = &graph.nodes()[i];
        // The producer must be a GEMM whose only observable output is
        // the edge into `j`: unretained, and its C consumed exactly by
        // this one edge (the intermediate is dead after fusion).
        if ni.program.entry != "gemm"
            || ni.program.args.len() != 3
            || ni.retain
            || total_consumers[i] != 1
            || consumers[i][0] != 1
        {
            continue;
        }
        // Shapes: C1[m,mid] = A[m,k]·B1[k,mid]; C[m,n] = C1·B2[mid,n].
        let (m, mid) = (ni.program.args[0].rows, ni.program.args[0].cols);
        let k = ni.program.args[1].cols;
        let n = nj.program.args[0].cols;
        let shape = Shape::of(&[m, n, k, mid]);
        let Some(cfg) = chain::config_for(machine, &shape) else {
            continue;
        };
        let Ok(parts) = chain::ChainSpace.build(&shape, &MappingConfig::Gemm(cfg)) else {
            continue;
        };
        let program =
            Program::from_parts(parts, "chain").with_space(Arc::new(chain::ChainSpace), shape);
        // chain(C, A, B1, B2): C from the consumer, A/B1 from the
        // producer, B2 from the consumer.
        let bindings = vec![
            nj.bindings[0].clone(),
            ni.bindings[1].clone(),
            ni.bindings[2].clone(),
            nj.bindings[2].clone(),
        ];
        claimed[i] = true;
        claimed[j] = true;
        out.push(Candidate {
            rule: "dual_chain",
            members: vec![i, j],
            position: j,
            program,
            bindings,
            // The consumer's A slot (the dead intermediate) is the one
            // parameter the fused launch no longer materializes.
            param_remap: vec![(j, 0, 0), (i, 1, 1), (i, 2, 2), (j, 2, 3)],
            fused_cycles: 0.0,
            unfused_cycles: 0.0,
        });
    }

    // Rule 2: gemm + row-reduction over the same A source.
    for r in 0..graph.len() {
        if claimed[r] {
            continue;
        }
        let nr = &graph.nodes()[r];
        if nr.program.entry != "reduce" || nr.program.args.len() != 2 {
            continue;
        }
        for g in 0..graph.len() {
            if g == r || claimed[g] || claimed[r] {
                continue;
            }
            let ng = &graph.nodes()[g];
            if ng.program.entry != "gemm" || ng.program.args.len() != 3 {
                continue;
            }
            // Both must read the same A (the reduction of a GEMM's
            // *output* is a different dataflow and stays unfused).
            if !same_source(&ng.bindings[1], &nr.bindings[1]) {
                continue;
            }
            let (m, n) = (ng.program.args[0].rows, ng.program.args[0].cols);
            let k = ng.program.args[1].cols;
            if nr.program.args[0].rows != m || nr.program.args[1].cols != k {
                continue;
            }
            let position = g.max(r);
            // Every consumer of either member must come after the fused
            // node's position, or the rebuilt graph would reference a
            // node that does not exist yet.
            let early_consumer = graph.nodes().iter().enumerate().any(|(c, node)| {
                c <= position
                    && c != g
                    && c != r
                    && node.bindings.iter().any(|b| {
                        matches!(b, Binding::Output { node, .. } if node.index() == g || node.index() == r)
                    })
            });
            if early_consumer {
                continue;
            }
            let shape = Shape::of(&[m, n, k]);
            let Some(cfg) = gemm_reduction::config_for_pinned_v(machine, &shape, n) else {
                continue;
            };
            let Ok(parts) = gemm_reduction::build_with(m, n, k, cfg) else {
                continue;
            };
            let program = Program::from_parts(parts, "gr")
                .with_space(Arc::new(gemm_reduction::PinnedVSpace { v: n }), shape);
            // gr(C, Y, A, B): C/B from the GEMM, Y from the reduction,
            // A from the shared source.
            let bindings = vec![
                ng.bindings[0].clone(),
                nr.bindings[0].clone(),
                ng.bindings[1].clone(),
                ng.bindings[2].clone(),
            ];
            claimed[g] = true;
            claimed[r] = true;
            let mut members = vec![g, r];
            members.sort_unstable();
            out.push(Candidate {
                rule: "gemm_reduction",
                members,
                position,
                program,
                bindings,
                param_remap: vec![(g, 0, 0), (g, 1, 2), (g, 2, 3), (r, 0, 1), (r, 1, 2)],
                fused_cycles: 0.0,
                unfused_cycles: 0.0,
            });
            break;
        }
    }

    // Candidates apply in insertion-position order.
    out.sort_by_key(|c| c.position);
    out
}

/// Two bindings denote the same tensor source.
fn same_source(a: &Binding, b: &Binding) -> bool {
    match (a, b) {
        (Binding::External(x), Binding::External(y)) => x == y,
        (
            Binding::Output {
                node: nx,
                param: px,
            },
            Binding::Output {
                node: ny,
                param: py,
            },
        ) => nx == ny && px == py,
        _ => false,
    }
}

/// Rebuild the graph with `accepted` rewrites applied, producing the
/// original→rewritten parameter map.
fn apply(graph: &TaskGraph, accepted: Vec<Candidate>) -> Result<FusionPlan, RuntimeError> {
    if accepted.is_empty() {
        return Ok(identity_plan(graph));
    }
    let mut at_position: Vec<Option<&Candidate>> = vec![None; graph.len()];
    let mut member_of: Vec<Option<&Candidate>> = vec![None; graph.len()];
    for cand in &accepted {
        at_position[cand.position] = Some(cand);
        for &m in &cand.members {
            member_of[m] = Some(cand);
        }
    }

    let mut fused = TaskGraph::new();
    let mut param_map: Vec<Vec<Option<(usize, usize)>>> = graph
        .nodes()
        .iter()
        .map(|n| vec![None; n.program.args.len()])
        .collect();
    let mut rewrites = Vec::new();
    // A node's buffers survive an unfused launch when it is retained or
    // a sink; a fused node must therefore be retained whenever any of
    // its members was kept, or fusing could drop a result the unfused
    // graph returns (a member that was a sink can stop being one once
    // its partner's consumers hang off the fused node).
    let total_consumers: Vec<usize> = graph
        .consumer_counts()
        .iter()
        .map(|c| c.iter().sum())
        .collect();

    let remap =
        |param_map: &[Vec<Option<(usize, usize)>>], b: &Binding| -> Result<Binding, RuntimeError> {
            Ok(match b {
                Binding::Output { node, param } => {
                    let (nn, np) =
                        param_map[node.index()][*param].ok_or_else(|| RuntimeError::Internal {
                            what: format!(
                                "fusion dropped a buffer that node {} still consumes",
                                node.index()
                            ),
                        })?;
                    Binding::Output {
                        node: NodeId(nn),
                        param: np,
                    }
                }
                other => other.clone(),
            })
        };

    for idx in 0..graph.len() {
        if let Some(cand) = at_position[idx] {
            let bindings = cand
                .bindings
                .iter()
                .map(|b| remap(&param_map, b))
                .collect::<Result<Vec<_>, _>>()?;
            let name = cand
                .members
                .iter()
                .map(|&m| graph.nodes()[m].name.as_str())
                .collect::<Vec<_>>()
                .join("+");
            let id = fused.add_node(&name, cand.program.clone(), bindings)?;
            let member_kept = cand
                .members
                .iter()
                .any(|&m| graph.nodes()[m].retain || total_consumers[m] == 0);
            if member_kept {
                fused.retain(id)?;
            }
            for &(member, member_param, fused_param) in &cand.param_remap {
                param_map[member][member_param] = Some((id.index(), fused_param));
            }
            rewrites.push(FusionRewrite {
                fused: id,
                rule: cand.rule,
                replaced: cand
                    .members
                    .iter()
                    .map(|&m| graph.nodes()[m].name.clone())
                    .collect(),
                fused_cycles: cand.fused_cycles,
                unfused_cycles: cand.unfused_cycles,
            });
        } else if member_of[idx].is_none() {
            let node = &graph.nodes()[idx];
            let bindings = node
                .bindings
                .iter()
                .map(|b| remap(&param_map, b))
                .collect::<Result<Vec<_>, _>>()?;
            let id = fused.add_node(&node.name, node.program.clone(), bindings)?;
            if node.retain {
                fused.retain(id)?;
            }
            for (p, slot) in param_map[idx].iter_mut().enumerate() {
                *slot = Some((id.index(), p));
            }
        }
        // Members that are not the insertion position vanish: their
        // parameters stay mapped through the fused node (set when it
        // was added); only a slot bound to a fused-away intermediate
        // maps to nothing.
    }

    Ok(FusionPlan {
        graph: fused,
        param_map,
        rewrites,
        declined: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::{gemm, reduction};

    struct AlwaysFuse;
    impl FusionGate for AlwaysFuse {
        fn solo_cycles(&mut self, _program: &Program) -> Option<f64> {
            Some(1.0)
        }
    }

    struct NeverFuse;
    impl FusionGate for NeverFuse {
        fn solo_cycles(&mut self, _program: &Program) -> Option<f64> {
            None
        }
    }

    /// Scores fused kernels slower than the launches they replace.
    struct PreferUnfused;
    impl FusionGate for PreferUnfused {
        fn solo_cycles(&mut self, program: &Program) -> Option<f64> {
            Some(if program.entry == "chain" || program.entry == "gr" {
                10.0
            } else {
                1.0
            })
        }
    }

    fn gemm_program(m: usize, n: usize, k: usize) -> Program {
        Program::from_parts(
            gemm::build(m, n, k, &MachineConfig::test_gpu()).unwrap(),
            "gemm",
        )
    }

    fn chain_graph() -> TaskGraph {
        let mut g = TaskGraph::new();
        let a = g
            .add_node(
                "up",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("X"),
                    Binding::external("W1"),
                ],
            )
            .unwrap();
        g.add_node(
            "down",
            gemm_program(64, 64, 64),
            vec![
                Binding::Zeros,
                Binding::output(a, 0),
                Binding::external("W2"),
            ],
        )
        .unwrap();
        g
    }

    #[test]
    fn chain_pattern_fuses_to_one_node() {
        let g = chain_graph();
        let plan = plan(&g, &MachineConfig::test_gpu(), &mut AlwaysFuse).unwrap();
        assert_eq!(plan.graph.len(), 1);
        assert_eq!(plan.rewrites.len(), 1);
        assert_eq!(plan.rewrites[0].rule, "dual_chain");
        assert_eq!(plan.rewrites[0].replaced, vec!["up", "down"]);
        // AlwaysFuse scores every program 1.0: fused 1.0 vs 2 members.
        assert_eq!(plan.rewrites[0].fused_cycles, 1.0);
        assert_eq!(plan.rewrites[0].unfused_cycles, 2.0);
        assert!(plan.declined.is_empty());
        assert_eq!(plan.graph.nodes()[0].name, "up+down");
        // The consumer's C maps to the fused C; the dead intermediate
        // maps nowhere.
        assert_eq!(plan.target(1, 0), Some((0, 0)));
        assert_eq!(plan.target(0, 0), None);
    }

    #[test]
    fn gate_vetoes_everything_when_it_cannot_evaluate() {
        let g = chain_graph();
        let plan = plan(&g, &MachineConfig::test_gpu(), &mut NeverFuse).unwrap();
        assert!(plan.is_identity());
        assert_eq!(plan.graph.len(), 2);
        // Unevaluable candidates are skipped, not declined.
        assert!(plan.declined.is_empty());
    }

    #[test]
    fn measured_losers_are_declined_with_margins() {
        let g = chain_graph();
        let plan = plan(&g, &MachineConfig::test_gpu(), &mut PreferUnfused).unwrap();
        assert!(plan.is_identity());
        assert_eq!(plan.declined.len(), 1);
        let d = &plan.declined[0];
        assert_eq!(d.rule, "dual_chain");
        assert_eq!(d.replaced, vec!["up", "down"]);
        assert_eq!(d.fused_cycles, 10.0);
        assert_eq!(d.unfused_cycles, 2.0);
    }

    #[test]
    fn retained_intermediate_stays_unfused() {
        let mut g = chain_graph();
        g.retain(NodeId(0)).unwrap();
        let plan = plan(&g, &MachineConfig::test_gpu(), &mut AlwaysFuse).unwrap();
        assert!(plan.is_identity());
    }

    #[test]
    fn gemm_and_reduction_over_same_source_fuse() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        g.add_node(
            "proj",
            gemm_program(64, 64, 64),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::external("W"),
            ],
        )
        .unwrap();
        g.add_node(
            "stat",
            Program::from_parts(reduction::build(64, 64, &machine).unwrap(), "reduce"),
            vec![Binding::Zeros, Binding::external("X")],
        )
        .unwrap();
        let plan = plan(&g, &machine, &mut AlwaysFuse).unwrap();
        assert_eq!(plan.graph.len(), 1);
        assert_eq!(plan.rewrites[0].rule, "gemm_reduction");
        assert_eq!(plan.target(0, 0), Some((0, 0)), "gemm C -> gr C");
        assert_eq!(plan.target(1, 0), Some((0, 1)), "reduction Y -> gr Y");
    }

    #[test]
    fn reduction_of_gemm_output_stays_unfused() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        let a = g
            .add_node(
                "proj",
                gemm_program(64, 64, 64),
                vec![
                    Binding::Zeros,
                    Binding::external("X"),
                    Binding::external("W"),
                ],
            )
            .unwrap();
        g.add_node(
            "stat",
            Program::from_parts(reduction::build(64, 64, &machine).unwrap(), "reduce"),
            vec![Binding::Zeros, Binding::output(a, 0)],
        )
        .unwrap();
        let plan = plan(&g, &machine, &mut AlwaysFuse).unwrap();
        assert!(plan.is_identity());
    }
}
