//! Deterministic tracing and unified metrics for the runtime.
//!
//! The session already produces rich but fragmented signals —
//! [`GraphReport`] timelines, [`CacheStats`], [`PoolStats`], tuner sweep
//! outcomes, fusion-rewrite decisions. This module unifies them behind
//! three small pieces:
//!
//! - **[`Recorder`] / [`Event`]** — a span/event stream threaded through
//!   the whole execution path (graph submission, fusion rewrites with
//!   their sim-confirmed win margins, kernel-cache lookups, buffer-pool
//!   traffic, autotune sweeps, wave scheduling, per-node execution).
//!   Attach one with [`crate::Session::set_recorder`] /
//!   [`crate::Session::with_recorder`]; the default is the zero-cost
//!   [`NoopRecorder`], whose `enabled() == false` means event payloads
//!   are never even constructed.
//! - **[`MetricsRegistry`] / [`MetricsSnapshot`]** — one snapshot
//!   unifying the existing stats structs plus the new counters (fusion
//!   rewrites applied/declined, tuner sweep cache replays, per-dtype
//!   functional apply bytes). Read it with [`crate::Session::metrics`].
//! - **[`TraceSink`]** — a hand-rolled Chrome-trace-event JSON exporter
//!   (no `serde`, mirroring [`crate::TuningTable`]'s text round-trip):
//!   [`TraceSink::chrome_json`] turns any [`GraphReport`] into a file
//!   that opens directly in Perfetto (<https://ui.perfetto.dev>) or
//!   `chrome://tracing`, and [`TraceSink::parse_chrome_json`] is the
//!   minimal parser the round-trip tests and the CI trace validator use.
//!
//! # Determinism contract
//!
//! Every event payload is expressed in **sim cycles** (or other
//! deterministic quantities), never host wall-clock, except the
//! [`EventClass::Host`] events, which exist precisely to carry wall
//! time and are opt-in ([`TraceLog::with_host`]) — filtered from every
//! comparison the way `fig_functional` rows are filtered from CI figure
//! diffs. Each event belongs to an [`EventClass`] that states exactly
//! how reproducible it is:
//!
//! | class | identical across |
//! |-------|------------------|
//! | [`EventClass::Flow`] | repeat runs, schedule policies, parallelism levels |
//! | [`EventClass::Schedule`] | repeat runs, parallelism levels (the timeline is the policy's output) |
//! | [`EventClass::Exec`] | repeat runs at fixed settings (host-side interleaving is the point) |
//! | [`EventClass::Host`] | nothing — wall clock, opt-in |
//!
//! For a fixed session configuration the full recorded stream (minus
//! `Host`) is bit-identical across repeat runs; the property suite in
//! `tests/determinism_streams.rs` locks each row of the table down.

use crate::cache::CacheStats;
use crate::pool::PoolStats;
use crate::report::GraphReport;
use crate::tuner::TunerStats;
use cypress_sim::ApplyBytes;
use cypress_tensor::DType;
use std::fmt;
use std::sync::{Arc, Mutex};

/// How reproducible an [`Event`] is (see the module docs' table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventClass {
    /// Deterministic dataflow decisions: identical across repeat runs,
    /// schedule policies, and parallelism levels.
    Flow,
    /// The sim-cycle timeline a schedule policy produced: identical
    /// across repeat runs and parallelism levels; differs between
    /// policies by design (that difference *is* the policy).
    Schedule,
    /// Host-side execution detail (pool traffic, wave grouping):
    /// identical across repeat runs at fixed settings, but legitimately
    /// different between the serial walk and the wave executor.
    Exec,
    /// Host wall-clock measurements: never comparable, off by default
    /// (see [`TraceLog::with_host`]).
    Host,
}

/// One traced runtime event. All payloads are deterministic sim-side
/// quantities except [`Event::CompilePass`], the [`EventClass::Host`]
/// carrier of wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A graph entered [`crate::Session::launch_functional`] or
    /// [`crate::Session::launch_timing`].
    GraphSubmitted {
        /// Nodes in the submitted (pre-fusion) graph.
        nodes: usize,
        /// `"functional"` or `"timing"`.
        mode: &'static str,
    },
    /// The fusion rewriter applied a rewrite the simulator confirmed.
    FusionApplied {
        /// The rule that fired (`"dual_chain"` or `"gemm_reduction"`).
        rule: &'static str,
        /// Name of the fused node in the rewritten graph.
        fused: String,
        /// Names of the original nodes the fused launch replaced.
        replaced: Vec<String>,
        /// Solo sim cycles of the fused launch.
        fused_cycles: f64,
        /// Summed solo sim cycles of the launches it replaced; the win
        /// margin is `unfused_cycles - fused_cycles`.
        unfused_cycles: f64,
    },
    /// The fusion rewriter matched a candidate but the simulator said
    /// the fused launch loses, so it was left unfused.
    FusionDeclined {
        /// The rule that matched.
        rule: &'static str,
        /// Names of the nodes that stayed unfused.
        replaced: Vec<String>,
        /// Solo sim cycles of the (rejected) fused launch.
        fused_cycles: f64,
        /// Summed solo sim cycles of the unfused launches.
        unfused_cycles: f64,
    },
    /// One kernel-cache lookup through the session.
    CacheLookup {
        /// The compile fingerprint that was looked up.
        fingerprint: u64,
        /// `true` when served without running the pass pipeline.
        hit: bool,
        /// Entries the LRU bound dropped to make room on this lookup.
        evictions: u64,
    },
    /// One autotune sweep resolved (freshly timed or served from the
    /// [`crate::TuningTable`]).
    TunerSweep {
        /// Entry task of the tuned program.
        entry: String,
        /// Problem shape (`d0xd1x...`).
        shape: String,
        /// Candidates evaluated when the sweep ran.
        candidates: usize,
        /// The winning mapping's label.
        winner: String,
        /// Solo sim cycles of the hand-tuned default mapping.
        default_cycles: f64,
        /// Solo sim cycles of the winner.
        tuned_cycles: f64,
        /// `true` when the result came from the table without timing.
        cached: bool,
    },
    /// One candidate timed during an autotune sweep, in the space's
    /// deterministic enumeration order.
    TunerCandidate {
        /// Entry task of the tuned program.
        entry: String,
        /// The candidate mapping's label.
        config: String,
        /// Its solo sim cycles.
        cycles: f64,
    },
    /// A node's kernel ran (solo view), emitted post-run in ascending
    /// node-id order — independent of schedule policy and worker count.
    NodeExecuted {
        /// Node name in the launched graph.
        node: String,
        /// Name of the compiled kernel that ran.
        kernel: String,
        /// Solo sim cycles of the launch.
        cycles: f64,
    },
    /// A node's `[start, end)` interval on its simulated stream — the
    /// [`GraphReport`] timeline as events, in completion order.
    NodeSpan {
        /// Node name in the launched graph.
        node: String,
        /// Simulated stream the node ran on.
        stream: usize,
        /// Launch cycle relative to graph launch.
        start: f64,
        /// Retire cycle relative to graph launch.
        end: f64,
    },
    /// The graph sharder assigned a node to a simulated device
    /// (emitted only under [`crate::PlacementPolicy::Sharded`] with two
    /// or more devices, in ascending node-id order of the sharded
    /// graph).
    ShardAssigned {
        /// Node name in the sharded graph (transfer nodes included).
        node: String,
        /// Zero-based device the node was placed on.
        device: usize,
    },
    /// The sharder materialized a cross-device edge as an explicit
    /// transfer kernel charged to a topology link.
    LinkTransfer {
        /// Index of the link in [`cypress_sim::Topology::links`].
        link: usize,
        /// Producing device.
        src: usize,
        /// Consuming device.
        dst: usize,
        /// Payload bytes moved across the link.
        bytes: f64,
    },
    /// The wave executor scheduled one ready wave of nodes (absent under
    /// the serial walk, which has no waves).
    WaveScheduled {
        /// Zero-based wave index.
        wave: usize,
        /// Node ids in the wave, ascending.
        nodes: Vec<usize>,
    },
    /// The buffer pool handed out a zeroed buffer.
    PoolAcquire {
        /// Element type of the buffer.
        dtype: DType,
        /// Rows of the buffer.
        rows: usize,
        /// Columns of the buffer.
        cols: usize,
        /// `true` when a parked buffer was reused instead of allocated.
        reused: bool,
    },
    /// A drained intermediate's buffer was recycled into the pool.
    PoolRelease {
        /// Element type of the buffer.
        dtype: DType,
        /// Elements in the buffer.
        elements: usize,
        /// Parked buffers the pool's capacity bound evicted as a result.
        evictions: u64,
    },
    /// The fault layer observed an injected fault: a transient kernel
    /// fault, or the moment a permanent device loss fired.
    FaultInjected {
        /// The node whose launch faulted (`"device"` for a device-loss
        /// firing with no launch in flight).
        node: String,
        /// The device the fault fired on.
        device: usize,
        /// `"transient"` or `"device_loss"`.
        kind: &'static str,
        /// Sim cycle (relative to graph launch) the fault surfaced at.
        at: f64,
    },
    /// The retry policy re-executed a node after a transient fault.
    NodeRetried {
        /// The retried node's name.
        node: String,
        /// The device the retry launched on.
        device: usize,
        /// 1-based attempt number of the *new* launch (2 for the first
        /// retry).
        attempt: u32,
    },
    /// A device was permanently lost and removed from the schedule.
    DeviceEvicted {
        /// The dead device.
        device: usize,
        /// Sim cycle (relative to graph launch) it died at.
        at: f64,
    },
    /// The fault layer re-planned the unexecuted frontier onto the
    /// surviving devices after a device loss.
    Resharded {
        /// The evicted device the re-plan recovered from.
        device: usize,
        /// Nodes moved to surviving devices, in re-plan order.
        nodes: Vec<String>,
        /// Recovery transfers inserted for stranded buffers.
        recovery_transfers: usize,
    },
    /// Host wall-clock time one compiler pass took on a cache miss (the
    /// [`EventClass::Host`] event; see [`TraceLog::with_host`]).
    CompilePass {
        /// Pass name in pipeline order (`depan`, `vectorize`, ...).
        pass: String,
        /// Wall-clock nanoseconds the pass took.
        host_ns: u64,
    },
    /// A guided sweep's analytical ranking pass resolved
    /// ([`EventClass::Host`], like [`Event::CompilePass`]: its
    /// `host_ns` is wall-clock, so it is filtered from determinism
    /// checks).
    TunerRanked {
        /// Entry task of the tuned program.
        entry: String,
        /// Problem shape (`d0xd1x...`).
        shape: String,
        /// Candidates priced by the cost model.
        ranked: usize,
        /// Candidates dropped before compiling or timing.
        pruned: usize,
        /// `true` when a neighboring shape's winner seeded the sweep.
        transferred: bool,
        /// Wall-clock nanoseconds the ranking pass took.
        host_ns: u64,
    },
}

impl Event {
    /// The determinism class of this event (see [`EventClass`]).
    #[must_use]
    pub fn class(&self) -> EventClass {
        match self {
            Event::GraphSubmitted { .. }
            | Event::FusionApplied { .. }
            | Event::FusionDeclined { .. }
            | Event::CacheLookup { .. }
            | Event::TunerSweep { .. }
            | Event::TunerCandidate { .. }
            | Event::NodeExecuted { .. }
            | Event::ShardAssigned { .. }
            | Event::LinkTransfer { .. } => EventClass::Flow,
            Event::NodeSpan { .. }
            | Event::FaultInjected { .. }
            | Event::NodeRetried { .. }
            | Event::DeviceEvicted { .. }
            | Event::Resharded { .. } => EventClass::Schedule,
            Event::WaveScheduled { .. } | Event::PoolAcquire { .. } | Event::PoolRelease { .. } => {
                EventClass::Exec
            }
            Event::CompilePass { .. } | Event::TunerRanked { .. } => EventClass::Host,
        }
    }
}

/// Sink for runtime [`Event`]s.
///
/// The session consults [`Recorder::enabled`] before building any event
/// payload, so a disabled recorder (the default [`NoopRecorder`]) keeps
/// the hot path free of allocation and formatting — attaching telemetry
/// is strictly opt-in.
pub trait Recorder: fmt::Debug + Send {
    /// `false` lets emission sites skip constructing events entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn record(&mut self, event: Event);
}

/// The default recorder: records nothing and reports itself disabled,
/// so sessions without telemetry pay nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// A shared, cloneable in-memory event log.
///
/// Clones share one underlying buffer, so the idiom is: keep one handle,
/// give the session a clone, read [`TraceLog::events`] afterwards:
///
/// ```
/// use cypress_runtime::telemetry::TraceLog;
/// use cypress_runtime::Session;
/// use cypress_sim::MachineConfig;
///
/// let log = TraceLog::new();
/// let mut session = Session::new(MachineConfig::test_gpu()).with_recorder(log.clone());
/// // ... launch graphs ...
/// assert!(log.events().is_empty()); // nothing launched yet
/// ```
///
/// [`EventClass::Host`] events are dropped unless the log was built
/// with [`TraceLog::with_host`], so the default stream is bit-identical
/// across repeat runs.
#[derive(Debug, Clone, Default)]
pub struct TraceLog {
    shared: Arc<Mutex<Vec<Event>>>,
    host: bool,
}

impl TraceLog {
    /// A new, empty log (host-time events filtered out).
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Opt in to [`EventClass::Host`] events (wall-clock payloads).
    /// Streams recorded with host events are *not* comparable across
    /// runs — filter by [`Event::class`] before diffing.
    #[must_use]
    pub fn with_host(mut self) -> Self {
        self.host = true;
        self
    }

    /// Snapshot of the recorded events, in emission order.
    #[must_use]
    pub fn events(&self) -> Vec<Event> {
        self.lock().clone()
    }

    /// Events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drop all recorded events (the handle stays attached).
    pub fn clear(&self) {
        self.lock().clear();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Vec<Event>> {
        // A panicking recorder thread must not wedge telemetry: take the
        // data through the poison.
        self.shared
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl Recorder for TraceLog {
    fn record(&mut self, event: Event) {
        if !self.host && event.class() == EventClass::Host {
            return;
        }
        self.lock().push(event);
    }
}

/// The session-owned accumulator behind [`MetricsSnapshot`]: the new
/// counters that no existing stats struct carries. The session merges
/// it with [`CacheStats`], [`PoolStats`], and [`TunerStats`] in
/// [`crate::Session::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    /// Fusion rewrites the simulator confirmed and the session applied.
    pub fusion_applied: u64,
    /// Fusion candidates the simulator rejected (fused launch loses).
    pub fusion_declined: u64,
    /// Cache lookups replayed in candidate order by the parallel
    /// autotune sweep (see `Session::set_parallelism`): how much cache
    /// traffic the sweep re-issued to keep counters bit-identical to
    /// the serial sweep.
    pub sweep_replays: u64,
    /// Transfer kernels the graph sharder inserted across every launch
    /// of this session (one per cross-device edge after deduplication).
    pub comm_launches: u64,
    /// Payload bytes those transfers moved across topology links.
    pub link_bytes: u64,
    /// Per-dtype bytes the functional `apply` path moved across every
    /// launch of this session.
    pub apply_bytes: ApplyBytes,
    /// Injected faults the fault layer observed across every launch.
    pub faults_injected: u64,
    /// Node attempts re-executed after transient faults.
    pub retries: u64,
    /// Devices permanently lost and evicted from schedules.
    pub devices_evicted: u64,
    /// Nodes re-planned onto surviving devices after evictions.
    pub nodes_resharded: u64,
}

impl MetricsRegistry {
    /// Combine these counters with the component stats into one
    /// [`MetricsSnapshot`].
    #[must_use]
    pub fn snapshot(
        &self,
        cache: CacheStats,
        pool: PoolStats,
        tuner: TunerStats,
    ) -> MetricsSnapshot {
        MetricsSnapshot {
            cache,
            pool,
            tuner,
            fusion_applied: self.fusion_applied,
            fusion_declined: self.fusion_declined,
            sweep_replays: self.sweep_replays,
            comm_launches: self.comm_launches,
            link_bytes: self.link_bytes,
            apply_bytes: self.apply_bytes,
            faults_injected: self.faults_injected,
            retries: self.retries,
            devices_evicted: self.devices_evicted,
            nodes_resharded: self.nodes_resharded,
        }
    }
}

/// One unified view of everything the session counts, returned by
/// [`crate::Session::metrics`]. Every field is deterministic for a
/// fixed launch sequence (the pool's reuse counters may differ across
/// *parallelism* settings, since buffer interleaving is host-side; see
/// [`EventClass::Exec`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsSnapshot {
    /// Kernel-cache counters ([`crate::Session::cache_stats`]).
    pub cache: CacheStats,
    /// Buffer-pool counters ([`crate::Session::pool_stats`]).
    pub pool: PoolStats,
    /// Tuning-table counters ([`crate::TuningTable::stats`]).
    pub tuner: TunerStats,
    /// Fusion rewrites applied (see [`MetricsRegistry`]).
    pub fusion_applied: u64,
    /// Fusion rewrites declined by the simulator gate.
    pub fusion_declined: u64,
    /// Parallel-sweep cache replays.
    pub sweep_replays: u64,
    /// Transfer kernels inserted by the graph sharder.
    pub comm_launches: u64,
    /// Payload bytes moved across topology links by those transfers.
    pub link_bytes: u64,
    /// Per-dtype functional apply bytes.
    pub apply_bytes: ApplyBytes,
    /// Injected faults observed (see [`MetricsRegistry`]).
    pub faults_injected: u64,
    /// Node attempts re-executed after transient faults.
    pub retries: u64,
    /// Devices permanently lost and evicted.
    pub devices_evicted: u64,
    /// Nodes re-planned after device evictions.
    pub nodes_resharded: u64,
}

impl fmt::Display for MetricsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cache   hits {} | misses {} | evictions {} | entries {}",
            self.cache.hits, self.cache.misses, self.cache.evictions, self.cache.entries
        )?;
        writeln!(
            f,
            "pool    acquired {} | reused {} | evicted {} | free {}",
            self.pool.acquired, self.pool.reused, self.pool.evicted, self.pool.free
        )?;
        writeln!(
            f,
            "tuner   lookups {} | hits {} | sweeps {} | candidates timed {} | ranked {} | \
             pruned {} | transferred {} | sweep replays {}",
            self.tuner.lookups,
            self.tuner.hits,
            self.tuner.sweeps,
            self.tuner.candidates_timed,
            self.tuner.ranked,
            self.tuner.pruned,
            self.tuner.transferred,
            self.sweep_replays
        )?;
        writeln!(
            f,
            "fusion  applied {} | declined {}",
            self.fusion_applied, self.fusion_declined
        )?;
        writeln!(
            f,
            "comm    launches {} | link bytes {}",
            self.comm_launches, self.link_bytes
        )?;
        writeln!(
            f,
            "fault   injected {} | retries {} | evicted {} | resharded {}",
            self.faults_injected, self.retries, self.devices_evicted, self.nodes_resharded
        )?;
        write!(f, "apply   {}", self.apply_bytes)
    }
}

/// A parsed `"X"` (complete) event of a Chrome trace, as produced by
/// [`TraceSink::chrome_json`] and read back by
/// [`TraceSink::parse_chrome_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeSpan {
    /// Span name (the node name).
    pub name: String,
    /// Category string (`"node"` for graph spans).
    pub cat: String,
    /// Start timestamp. [`TraceSink::chrome_json`] writes **sim
    /// cycles** here, not microseconds — relative magnitudes are what
    /// Perfetto renders.
    pub ts: f64,
    /// Duration, in the same unit as `ts`.
    pub dur: f64,
    /// Process id (always 0 for graph traces).
    pub pid: u64,
    /// Thread id — `device * streams + stream`, so each device's
    /// streams group into a contiguous track band (plain `stream` on a
    /// single-device report).
    pub tid: usize,
}

/// A parsed Chrome trace: the stream metadata plus the spans.
#[derive(Debug, Clone, PartialEq)]
pub struct ChromeTrace {
    /// Stream count declared by the `cypress_graph` metadata event.
    pub streams: Option<usize>,
    /// Device count declared by the metadata event (`None` for traces
    /// written before multi-device support; readers treat that as 1).
    pub devices: Option<usize>,
    /// Makespan (cycles) declared by the metadata event.
    pub makespan: Option<f64>,
    /// All `"X"` events, in file order (sorted by `ts` on export).
    pub spans: Vec<ChromeSpan>,
}

/// Exporter (and minimal re-parser) of Chrome-trace-event JSON.
///
/// Serialization is hand-rolled like [`crate::TuningTable::to_text`] —
/// the offline build carries no `serde` — and numbers print in a form
/// the parser reads back bit-for-bit, so the round-trip is exact.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSink;

impl TraceSink {
    /// Render `report` as Chrome-trace-event JSON.
    ///
    /// One `"X"` (complete) event per node — `ts`/`dur` in **sim
    /// cycles**, `tid` = `device * streams + stream` (so each device's
    /// streams render as a contiguous track band; plain `stream` on a
    /// single-device report) — sorted by start time so timestamps are
    /// monotone, preceded by one `"M"` metadata event (`cypress_graph`)
    /// declaring the stream count, device count, and makespan. The
    /// output loads directly in Perfetto or `chrome://tracing`.
    #[must_use]
    pub fn chrome_json(report: &GraphReport) -> String {
        let mut spans: Vec<&crate::report::NodeTiming> = report.nodes.iter().collect();
        spans.sort_by(|a, b| {
            a.start
                .partial_cmp(&b.start)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        let mut out = String::from("{\"traceEvents\":[");
        out.push_str(&format!(
            "{{\"name\":\"cypress_graph\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\
             \"args\":{{\"streams\":{},\"devices\":{},\"makespan\":{},\"unit\":\"cycles\"}}}}",
            report.streams,
            report.devices.max(1),
            json_num(report.makespan)
        ));
        for t in spans {
            let fused = if t.replaced.is_empty() {
                String::new()
            } else {
                format!(",\"fused\":{}", json_str(&t.replaced.join(", ")))
            };
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"node\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":{},\"args\":{{\"kernel\":{},\"mapping\":{},\
                 \"cycles\":{},\"achieved_tflops\":{}{}}}}}",
                json_str(&t.node),
                json_num(t.start),
                json_num(t.end - t.start),
                t.device * report.streams + t.stream,
                json_str(&t.report.kernel),
                json_str(&t.mapping),
                json_num(t.report.cycles),
                json_num(t.report.achieved_tflops),
                fused,
            ));
        }
        out.push_str("]}");
        out
    }

    /// [`TraceSink::chrome_json`] plus the trace's
    /// [`EventClass::Host`] events — compile passes and guided-tuner
    /// ranking passes — appended as `cat:"host"` `"X"` spans.
    ///
    /// Host spans measure wall-clock nanoseconds on a synthetic
    /// timeline of their own (each starts where the previous host span
    /// ended), not sim cycles: they are observability, deliberately
    /// excluded from determinism checks the way
    /// [`Event::CompilePass`]'s `host_ns` already is. Consumers
    /// checking monotonicity, stream bounds, or makespan containment
    /// must filter on `cat != "host"` (as `check_trace` does).
    #[must_use]
    pub fn chrome_json_with_host(report: &GraphReport, events: &[Event]) -> String {
        let mut out = Self::chrome_json(report);
        out.truncate(out.len() - "]}".len());
        let mut ts = 0.0;
        for event in events {
            let (name, host_ns, extra) = match event {
                Event::CompilePass { pass, host_ns } => {
                    (format!("compile:{pass}"), *host_ns, String::new())
                }
                Event::TunerRanked {
                    entry,
                    shape,
                    ranked,
                    pruned,
                    transferred,
                    host_ns,
                } => (
                    format!("rank:{entry}"),
                    *host_ns,
                    format!(
                        ",\"shape\":{},\"ranked\":{ranked},\"pruned\":{pruned},\
                         \"transferred\":{transferred}",
                        json_str(shape)
                    ),
                ),
                _ => continue,
            };
            out.push(',');
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"host\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
                 \"pid\":0,\"tid\":0,\"args\":{{\"unit\":\"ns\"{extra}}}}}",
                json_str(&name),
                json_num(ts),
                json_num(host_ns as f64),
            ));
            ts += host_ns as f64;
        }
        out.push_str("]}");
        out
    }

    /// Parse JSON produced by [`TraceSink::chrome_json`] (any
    /// conforming Chrome trace with a top-level `traceEvents` array
    /// works). Returns the metadata plus every `"X"` span in file
    /// order.
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax or shape problem.
    pub fn parse_chrome_json(json: &str) -> Result<ChromeTrace, String> {
        let value = JsonParser::parse(json)?;
        let Some(events) = value.get("traceEvents").and_then(JsonValue::as_array) else {
            return Err("missing top-level \"traceEvents\" array".into());
        };
        let mut trace = ChromeTrace {
            streams: None,
            devices: None,
            makespan: None,
            spans: Vec::new(),
        };
        for (i, ev) in events.iter().enumerate() {
            let field = |k: &str| ev.get(k);
            let ph = field("ph").and_then(JsonValue::as_str).unwrap_or("");
            let name = field("name").and_then(JsonValue::as_str).unwrap_or("");
            match ph {
                "M" if name == "cypress_graph" => {
                    let args = field("args");
                    trace.streams = args
                        .and_then(|a| a.get("streams"))
                        .and_then(JsonValue::as_f64)
                        .map(|s| s as usize);
                    trace.devices = args
                        .and_then(|a| a.get("devices"))
                        .and_then(JsonValue::as_f64)
                        .map(|d| d as usize);
                    trace.makespan = args
                        .and_then(|a| a.get("makespan"))
                        .and_then(JsonValue::as_f64);
                }
                "X" => {
                    let num = |k: &str| {
                        field(k)
                            .and_then(JsonValue::as_f64)
                            .ok_or_else(|| format!("event {i}: missing numeric \"{k}\""))
                    };
                    trace.spans.push(ChromeSpan {
                        name: name.to_string(),
                        cat: field("cat")
                            .and_then(JsonValue::as_str)
                            .unwrap_or("")
                            .to_string(),
                        ts: num("ts")?,
                        dur: num("dur")?,
                        pid: num("pid")? as u64,
                        tid: num("tid")? as usize,
                    });
                }
                _ => {}
            }
        }
        Ok(trace)
    }
}

/// Render an `f64` as a JSON number that parses back bit-for-bit:
/// integral values print as integers, everything else in Rust's
/// shortest round-trip form. Non-finite values (never produced by the
/// simulator) clamp to 0.
fn json_num(x: f64) -> String {
    if !x.is_finite() {
        return "0".to_string();
    }
    if x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:?}")
    }
}

/// Escape a string for a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Minimal JSON value for the hand-rolled parser.
#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Recursive-descent JSON parser: just enough for Chrome traces, with
/// positions in error messages.
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(text: &'a str) -> Result<JsonValue, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(JsonValue::Str(self.string()?)),
            b't' => self.literal("true", JsonValue::Bool(true)),
            b'f' => self.literal("false", JsonValue::Bool(false)),
            b'n' => self.literal("null", JsonValue::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected byte `{}` at {}",
                char::from(other),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: JsonValue) -> Result<JsonValue, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected `{word}` at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `}}` at byte {}, found `{}`",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected `,` or `]` at byte {}, found `{}`",
                        self.pos,
                        char::from(other)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            match code {
                                // High surrogate: JSON encodes astral-plane
                                // characters as a `\uXXXX\uXXXX` pair; combine
                                // with the low half that must follow.
                                0xD800..=0xDBFF
                                    if self.bytes.get(self.pos) == Some(&b'\\')
                                        && self.bytes.get(self.pos + 1) == Some(&b'u') =>
                                {
                                    let rewind = self.pos;
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    if (0xDC00..=0xDFFF).contains(&lo) {
                                        let c = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
                                        out.push(
                                            char::from_u32(c)
                                                .expect("combined surrogate pair is a scalar"),
                                        );
                                    } else {
                                        // Not a low half: the lone high
                                        // surrogate is U+FFFD and the second
                                        // escape stands on its own.
                                        out.push('\u{FFFD}');
                                        self.pos = rewind;
                                    }
                                }
                                // Lone or trailing surrogate halves are not
                                // scalar values; replace like `String::from_utf8_lossy`.
                                0xD800..=0xDFFF => out.push('\u{FFFD}'),
                                _ => out.push(
                                    char::from_u32(code)
                                        .expect("non-surrogate u16 code points are scalars"),
                                ),
                            }
                        }
                        other => {
                            return Err(format!(
                                "bad escape `\\{}` at byte {}",
                                char::from(other),
                                self.pos - 1
                            ))
                        }
                    }
                }
                _ => {
                    // Re-decode from the byte position: names can carry
                    // multi-byte UTF-8.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|e| format!("bad UTF-8 at byte {start}: {e}"))?;
                    let c = s
                        .chars()
                        .next()
                        .ok_or_else(|| "unterminated string".to_string())?;
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let digits = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let s = std::str::from_utf8(digits).map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(s, 16).map_err(|e| format!("bad \\u escape `{s}`: {e}"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("bad number at byte {start}"))?;
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|e| format!("bad number `{s}` at byte {start}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_is_disabled_and_drops_events() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(Event::GraphSubmitted {
            nodes: 1,
            mode: "timing",
        });
        // Nothing observable: NoopRecorder holds no state by
        // construction (it is a unit struct).
    }

    #[test]
    fn trace_log_clones_share_the_buffer() {
        let log = TraceLog::new();
        let mut handle = log.clone();
        handle.record(Event::GraphSubmitted {
            nodes: 3,
            mode: "functional",
        });
        assert_eq!(log.len(), 1);
        log.clear();
        assert!(log.is_empty());
    }

    #[test]
    fn host_events_are_opt_in() {
        let host_event = Event::CompilePass {
            pass: "depan".into(),
            host_ns: 123,
        };
        assert_eq!(host_event.class(), EventClass::Host);
        let mut default_log = TraceLog::new();
        default_log.record(host_event.clone());
        assert!(default_log.is_empty());
        let mut host_log = TraceLog::new().with_host();
        host_log.record(host_event);
        assert_eq!(host_log.len(), 1);
    }

    #[test]
    fn json_numbers_round_trip() {
        for x in [0.0, 1.0, -3.5, 123456789.25, 1e18, 29_400.0] {
            let parsed = JsonParser::parse(&json_num(x)).unwrap();
            assert_eq!(parsed.as_f64(), Some(x), "{x}");
        }
    }

    #[test]
    fn json_strings_escape_and_parse() {
        let tricky = "a\"b\\c\nd\tμ";
        let parsed = JsonParser::parse(&json_str(tricky)).unwrap();
        assert_eq!(parsed.as_str(), Some(tricky));
    }

    #[test]
    fn unicode_escapes_combine_surrogate_pairs() {
        // 𝕫 (U+1D56B) arrives as a surrogate pair from conforming JSON
        // writers; the parser must combine the halves, not emit two
        // replacement characters.
        let parsed = JsonParser::parse("\"\\ud835\\udd6b\"").unwrap();
        assert_eq!(parsed.as_str(), Some("\u{1D56B}"));
        // 🚀 (U+1F680) likewise.
        let parsed = JsonParser::parse("\"x\\ud83d\\ude80y\"").unwrap();
        assert_eq!(parsed.as_str(), Some("x\u{1F680}y"));

        // Lone halves are not scalar values: replace, don't crash.
        assert_eq!(
            JsonParser::parse(r#""\ud800""#).unwrap().as_str(),
            Some("\u{FFFD}")
        );
        assert_eq!(
            JsonParser::parse(r#""\udc00""#).unwrap().as_str(),
            Some("\u{FFFD}")
        );
        // A high half chased by a non-surrogate escape: the second
        // escape stands on its own.
        assert_eq!(
            JsonParser::parse(r#""\ud800A""#).unwrap().as_str(),
            Some("\u{FFFD}A")
        );
        // Two high halves, the second opening a valid pair: only the
        // first is replaced.
        assert_eq!(
            JsonParser::parse("\"\\ud800\\ud835\\udd6b\"")
                .unwrap()
                .as_str(),
            Some("\u{FFFD}\u{1D56B}")
        );
        // A high half followed by a raw character (no second escape).
        assert_eq!(
            JsonParser::parse(r#""\ud800z""#).unwrap().as_str(),
            Some("\u{FFFD}z")
        );
        // Truncated second escape is still a syntax error.
        assert!(JsonParser::parse(r#""\ud835\ud""#).is_err());
    }

    #[test]
    fn parser_rejects_malformed_input() {
        assert!(JsonParser::parse("{").is_err());
        assert!(JsonParser::parse("[1,]").is_err());
        assert!(JsonParser::parse("{\"a\" 1}").is_err());
        assert!(JsonParser::parse("\"unterminated").is_err());
        assert!(TraceSink::parse_chrome_json("[]").is_err());
    }
}
