//! `cypress-runtime`: a task-graph runtime above the Cypress compiler.
//!
//! The paper's programming model is task-based, and real workloads —
//! transformer layers, serving pipelines — are *graphs* of kernels, not
//! single launches. This crate adds the runtime layer the compiler and
//! simulator don't provide (the role Taskflow-style DAG executors and
//! Hidet's driver layer play in related systems):
//!
//! - [`Program`]: one compilable unit — task registry, mapping
//!   specification, entry name, and entry argument descriptors;
//! - [`TaskGraph`]: a DAG of kernel launches whose edges are explicit
//!   tensor buffers ([`Binding::Output`] wires a producer's parameter
//!   buffer into a consumer's parameter slot);
//! - [`Session`]: the long-lived object owning a **compiled-kernel
//!   cache** keyed by the stable fingerprint of
//!   `(tasks, mapping, entry args, machine, options)` — a repeated launch
//!   skips the Fig. 6 pass pipeline entirely — plus a [`BufferPool`] that
//!   recycles intermediate tensors across launches;
//! - an executor that schedules the graph over
//!   [`cypress_sim::Simulator`], threading output tensors of one launch
//!   into the inputs of the next (functional mode) or assembling a
//!   whole-graph [`GraphReport`] with a per-node stream timeline (timing
//!   mode);
//! - a [`SchedulePolicy`] on the session choosing between the serial
//!   walk (default — the makespan is the sum of the launches) and
//!   **multi-stream concurrent scheduling**, where a ready-queue assigns
//!   independent nodes to simulated streams, co-resident launches
//!   contend for SMs/L2/HBM under the [`cypress_sim::concurrent`] model,
//!   and dependents are released as upstream launches retire. Every
//!   schedule satisfies `critical_path <= makespan <= serial_sum` (see
//!   [`GraphReport`]), and functional results are policy-independent;
//! - a [`MappingPolicy`] on the session choosing between every node's
//!   hand-tuned mapping ([`MappingPolicy::Default`], bit-identical to
//!   the plain builders) and **simulator-driven mapping autotuning**
//!   ([`MappingPolicy::Autotune`]): nodes built from a
//!   [`cypress_core::MappingSpace`] via [`Program::from_space`] launch
//!   the fastest candidate of their space (see [`Session::autotune`] and
//!   the [`tuner`] docs), with winners persisted in a [`TuningTable`]
//!   that serializes across sessions;
//! - a [`FusionPolicy`] on the session enabling **automatic graph-level
//!   kernel fusion** ([`FusionPolicy::Auto`]): producer→consumer
//!   patterns — a GEMM feeding a GEMM, a GEMM next to a row-reduction
//!   of the same tensor — are rewritten into the paper's fused kernels
//!   (chained dual-GEMM, GEMM+Reduction) whenever the simulator
//!   confirms the fused launch beats the launches it replaces. Results
//!   are bitwise identical to [`FusionPolicy::Off`]; only launch count
//!   and timeline change, and every fused launch's
//!   [`NodeTiming::replaced`] names the original nodes (see the
//!   [`fuse`] docs).
//! - a [`PlacementPolicy`] on the session enabling **multi-device
//!   sharded execution** ([`PlacementPolicy::Sharded`]): the graph is
//!   partitioned across N simulated devices connected by NVLink-class
//!   links (see [`cypress_sim::Topology`]), every cross-device edge
//!   becomes an explicit transfer kernel charged to its link, and the
//!   concurrent scheduler overlaps communication with compute. Tensors
//!   are bitwise identical across placement policies and device counts,
//!   and `Sharded { devices: 1 }` is exactly
//!   [`PlacementPolicy::SingleDevice`], timeline included (see the
//!   [`shard`] docs);
//! - **host-side parallelism** on the session
//!   ([`Session::set_parallelism`], default = available cores): the
//!   functional executor runs each ready wave of nodes on a scoped
//!   worker pool, and `Session::autotune` compiles and times space
//!   candidates in parallel. Tensors, reports, and tuning winners are
//!   bit-identical at every worker count (`1` is byte-for-byte the
//!   serial path); only wall time changes.
//! - **deterministic observability** ([`telemetry`]): attach a
//!   [`Recorder`] with [`Session::set_recorder`] to trace the whole
//!   execution path — graph submissions, fusion decisions with their
//!   sim-confirmed margins, cache and pool traffic, autotune sweeps,
//!   wave scheduling, per-node spans in sim cycles — read one unified
//!   [`MetricsSnapshot`] from [`Session::metrics`], and export any
//!   [`GraphReport`] timeline to Perfetto-loadable Chrome-trace JSON
//!   with [`TraceSink::chrome_json`]. With no recorder attached (the
//!   default) nothing is constructed and every result is byte-identical
//!   to a session without the telemetry layer.
//! - **fault-tolerant execution** ([`FaultPolicy`]): attach a seeded
//!   deterministic [`FaultPlan`] ([`Session::set_fault_plan`]) injecting
//!   transient kernel faults, permanent device losses, and slowdown
//!   windows into the simulated machine. Under the default
//!   [`FaultPolicy::FailFast`] any fault surfaces as a typed
//!   [`RuntimeError`] carrying a partial [`GraphReport`]; under
//!   [`FaultPolicy::Retry`] transient faults re-execute the node (with
//!   optional backoff and per-node / whole-graph deadlines,
//!   [`Session::set_node_deadline`] / [`Session::set_graph_deadline`])
//!   and a permanent device loss triggers **degraded re-sharding**: the
//!   unexecuted frontier is re-planned onto the surviving devices,
//!   recovery transfers re-route stranded buffers, and the run completes
//!   with tensors bitwise identical to the fault-free run. Every
//!   recovery action is visible in [`GraphReport::recovery`], the
//!   timeline (`retry:`/`reshard:`/`xfer:recover:` spans), and the
//!   telemetry counters.
//!
//! # Example: GEMM → GEMM as one graph
//!
//! ```
//! use cypress_runtime::{Binding, Program, Session, TaskGraph};
//! use cypress_core::kernels::gemm;
//! use cypress_sim::MachineConfig;
//! use cypress_tensor::{DType, Tensor};
//! use std::collections::HashMap;
//!
//! let machine = MachineConfig::test_gpu();
//! let program = Program::from_parts(gemm::build(64, 64, 64, &machine)?, "gemm");
//!
//! let mut graph = TaskGraph::new();
//! // C1 = A @ B
//! let first = graph.add_node("first", program.clone(), vec![
//!     Binding::Zeros,
//!     Binding::external("A"),
//!     Binding::external("B"),
//! ])?;
//! // C2 = C1 @ B — the tensor-buffer edge wires first's C into A's slot.
//! let second = graph.add_node("second", program, vec![
//!     Binding::Zeros,
//!     Binding::output(first, 0),
//!     Binding::external("B"),
//! ])?;
//!
//! let mut session = Session::new(machine);
//! let inputs = HashMap::from([
//!     ("A".to_string(), Tensor::full(DType::F16, &[64, 64], 0.25)),
//!     ("B".to_string(), Tensor::full(DType::F16, &[64, 64], 0.5)),
//! ]);
//! let run = session.launch_functional(&graph, &inputs)?;
//! assert!(run.tensor(second, 0).is_some());
//! // Both nodes share one compiled kernel: one miss, one hit.
//! assert_eq!(session.cache_stats().misses, 1);
//! assert_eq!(session.cache_stats().hits, 1);
//! # Ok::<(), cypress_runtime::RuntimeError>(())
//! ```

pub mod cache;
pub mod error;
pub mod executor;
pub mod fuse;
pub mod graph;
pub mod pool;
pub mod program;
pub mod report;
pub mod session;
pub mod shard;
pub mod telemetry;
pub mod tuner;

pub use cache::{CacheStats, KernelCache};
pub use cypress_sim::{ApplyBytes, Fault, FaultPlan};
pub use error::RuntimeError;
pub use executor::GraphRun;
pub use fuse::{FusionDecline, FusionPolicy, FusionRewrite};
pub use graph::{Binding, Node, NodeId, TaskGraph};
pub use pool::{BufferPool, PoolStats};
pub use program::{Program, SpaceBinding};
pub use report::{GraphReport, NodeTiming, Recovery};
pub use session::{CompiledGraph, FaultPolicy, MappingPolicy, SchedulePolicy, Session};
pub use shard::{PlacementPolicy, ShardPlan, ShardTransfer};
pub use telemetry::{
    ChromeSpan, ChromeTrace, Event, EventClass, MetricsRegistry, MetricsSnapshot, NoopRecorder,
    Recorder, TraceLog, TraceSink,
};
pub use tuner::{TunedMapping, TunerBudget, TunerStats, TuningKey, TuningTable};
