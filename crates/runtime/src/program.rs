//! A compilable unit: one Cypress program plus its entry description.
//!
//! [`Program`] packages exactly what [`cypress_core::CypressCompiler::compile`]
//! consumes — the task registry, the mapping specification, the entry task
//! name, and the entry argument descriptors — so a graph node, the kernel
//! cache, and the executor all speak about the same unit. The kernel
//! builders under [`cypress_core::kernels`] return `(registry, mapping,
//! args)` triples; [`Program::from_parts`] adapts them directly.

use cypress_core::front::Privilege;
use cypress_core::{EntryArg, MappingSpec, TaskRegistry};

/// One compilable Cypress program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Task variants.
    pub registry: TaskRegistry,
    /// Mapping specification (must have exactly one entrypoint).
    pub mapping: MappingSpec,
    /// Entry task name (what the compiler's `name` argument receives).
    pub entry: String,
    /// Entry parameter descriptors, in kernel declaration order.
    pub args: Vec<EntryArg>,
}

impl Program {
    /// Package a registry, mapping, and argument list under `entry`.
    #[must_use]
    pub fn new(
        registry: TaskRegistry,
        mapping: MappingSpec,
        entry: &str,
        args: Vec<EntryArg>,
    ) -> Self {
        Program {
            registry,
            mapping,
            entry: entry.to_string(),
            args,
        }
    }

    /// Adapt the `(registry, mapping, args)` triple the kernel builders
    /// return, e.g. `Program::from_parts(gemm::build(m, n, k, &machine), "gemm")`.
    #[must_use]
    pub fn from_parts(parts: (TaskRegistry, MappingSpec, Vec<EntryArg>), entry: &str) -> Self {
        let (registry, mapping, args) = parts;
        Program::new(registry, mapping, entry, args)
    }

    /// The index of the entry parameter called `name`.
    #[must_use]
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| a.name == name)
    }

    /// Declared privilege of entry parameter `idx`, if the entry variant
    /// declares its signature (used to distinguish outputs from inputs).
    #[must_use]
    pub fn param_privilege(&self, idx: usize) -> Option<Privilege> {
        let entry_variant = &self.mapping.entry().variant;
        let variant = self.registry.variant(entry_variant).ok()?;
        let sig = variant.params.get(idx)?;
        Some(sig.privilege)
    }

    /// Indices of the entry parameters the kernel writes (its outputs).
    #[must_use]
    pub fn output_indices(&self) -> Vec<usize> {
        (0..self.args.len())
            .filter(|&i| {
                matches!(
                    self.param_privilege(i),
                    Some(Privilege::Write | Privilege::ReadWrite)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_sim::MachineConfig;

    #[test]
    fn from_parts_preserves_declaration_order() {
        let p = Program::from_parts(
            gemm::build(128, 128, 64, &MachineConfig::test_gpu()),
            "gemm",
        );
        assert_eq!(p.args.len(), 3);
        assert_eq!(p.param_index("C"), Some(0));
        assert_eq!(p.param_index("A"), Some(1));
        assert_eq!(p.param_index("B"), Some(2));
        assert_eq!(p.output_indices(), vec![0]);
    }
}
