//! A compilable unit: one Cypress program plus its entry description.
//!
//! [`Program`] packages exactly what [`cypress_core::CypressCompiler::compile`]
//! consumes — the task registry, the mapping specification, the entry task
//! name, and the entry argument descriptors — so a graph node, the kernel
//! cache, and the executor all speak about the same unit. The kernel
//! builders under [`cypress_core::kernels`] return `(registry, mapping,
//! args)` triples; [`Program::from_parts`] adapts them directly.
//!
//! A program may additionally carry a [`SpaceBinding`]: the
//! [`MappingSpace`] it was built from plus its problem [`Shape`]. Bound
//! programs are *tunable* — the session's autotuner (see
//! [`crate::tuner`]) can enumerate and time the space's candidate
//! mappings and transparently swap the winner in. [`Program::from_space`]
//! builds a bound program at the space's hand-tuned default, so an
//! untuned launch is bit-identical to the plain builders.

use cypress_core::front::Privilege;
use cypress_core::{CompileError, EntryArg, MappingSpace, MappingSpec, Shape, TaskRegistry};
use cypress_sim::MachineConfig;
use std::sync::Arc;

/// The mapping space a tunable program was built from, plus its problem
/// shape — what [`crate::Session::autotune`] needs to enumerate
/// candidate mappings for the program.
#[derive(Debug, Clone)]
pub struct SpaceBinding {
    /// The kernel's mapping space.
    pub space: Arc<dyn MappingSpace>,
    /// The problem shape the program was built at.
    pub shape: Shape,
}

/// One compilable Cypress program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Task variants.
    pub registry: TaskRegistry,
    /// Mapping specification (must have exactly one entrypoint).
    pub mapping: MappingSpec,
    /// Entry task name (what the compiler's `name` argument receives).
    pub entry: String,
    /// Entry parameter descriptors, in kernel declaration order.
    pub args: Vec<EntryArg>,
    /// The mapping space this program was built from, when known —
    /// `None` programs always run their fixed mapping.
    pub space: Option<SpaceBinding>,
}

impl Program {
    /// Package a registry, mapping, and argument list under `entry`.
    #[must_use]
    pub fn new(
        registry: TaskRegistry,
        mapping: MappingSpec,
        entry: &str,
        args: Vec<EntryArg>,
    ) -> Self {
        Program {
            registry,
            mapping,
            entry: entry.to_string(),
            args,
            space: None,
        }
    }

    /// Adapt the `(registry, mapping, args)` triple the kernel builders
    /// return, e.g. `Program::from_parts(gemm::build(m, n, k, &machine)?, "gemm")`.
    #[must_use]
    pub fn from_parts(parts: (TaskRegistry, MappingSpec, Vec<EntryArg>), entry: &str) -> Self {
        let (registry, mapping, args) = parts;
        Program::new(registry, mapping, entry, args)
    }

    /// Build a *tunable* program: `space` at its hand-tuned default
    /// mapping for `machine`, carrying the [`SpaceBinding`] the session's
    /// autotuner needs. Launched under [`crate::MappingPolicy::Default`]
    /// the result is bit-identical to the plain kernel builders.
    ///
    /// # Errors
    ///
    /// Propagates [`CompileError`] when the default mapping is invalid
    /// for this machine/shape combination.
    pub fn from_space(
        space: Arc<dyn MappingSpace>,
        shape: Shape,
        machine: &MachineConfig,
    ) -> Result<Self, CompileError> {
        let cfg = space.default_for(machine);
        space.validate(machine, &shape, &cfg)?;
        let (registry, mapping, args) = space.build(&shape, &cfg)?;
        let entry = space.entry().to_string();
        Ok(Program {
            registry,
            mapping,
            entry,
            args,
            space: Some(SpaceBinding { space, shape }),
        })
    }

    /// Attach a [`SpaceBinding`] to an already-built program (the
    /// program must have been built from the same space and shape).
    #[must_use]
    pub fn with_space(mut self, space: Arc<dyn MappingSpace>, shape: Shape) -> Self {
        self.space = Some(SpaceBinding { space, shape });
        self
    }

    /// The index of the entry parameter called `name`.
    #[must_use]
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.args.iter().position(|a| a.name == name)
    }

    /// Declared privilege of entry parameter `idx`, if the entry variant
    /// declares its signature (used to distinguish outputs from inputs).
    #[must_use]
    pub fn param_privilege(&self, idx: usize) -> Option<Privilege> {
        let entry_variant = &self.mapping.entry().variant;
        let variant = self.registry.variant(entry_variant).ok()?;
        let sig = variant.params.get(idx)?;
        Some(sig.privilege)
    }

    /// Indices of the entry parameters the kernel writes (its outputs).
    #[must_use]
    pub fn output_indices(&self) -> Vec<usize> {
        (0..self.args.len())
            .filter(|&i| {
                matches!(
                    self.param_privilege(i),
                    Some(Privilege::Write | Privilege::ReadWrite)
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_sim::MachineConfig;

    #[test]
    fn from_parts_preserves_declaration_order() {
        let p = Program::from_parts(
            gemm::build(128, 128, 64, &MachineConfig::test_gpu()).unwrap(),
            "gemm",
        );
        assert_eq!(p.args.len(), 3);
        assert_eq!(p.param_index("C"), Some(0));
        assert_eq!(p.param_index("A"), Some(1));
        assert_eq!(p.param_index("B"), Some(2));
        assert_eq!(p.output_indices(), vec![0]);
    }
}
