//! The compiled-kernel cache.
//!
//! Keys are the stable fingerprints of [`cypress_core::fingerprint`]: a
//! fingerprint covers the task registry, mapping specification, entry
//! name, entry argument shapes, target machine, and codegen-affecting
//! compiler options — everything that determines the compiled kernel. A
//! hit therefore returns the *identical* [`Compiled`] (shared via `Arc`)
//! and skips the Fig. 6 pass pipeline entirely, which is what makes
//! repeated launches of a steady-state serving workload cheap.

use cypress_core::{CompileError, Compiled};
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the compiler.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when the cache is cold).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Fingerprint-keyed store of compiled kernels.
#[derive(Debug, Default)]
pub struct KernelCache {
    entries: HashMap<u64, Arc<Compiled>>,
    hits: u64,
    misses: u64,
}

impl KernelCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        KernelCache::default()
    }

    /// Look up `fingerprint`, running `compile` only on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the compiler's [`CompileError`] (failures are not
    /// cached; a later retry recompiles).
    pub fn get_or_compile(
        &mut self,
        fingerprint: u64,
        compile: impl FnOnce() -> Result<Compiled, CompileError>,
    ) -> Result<Arc<Compiled>, CompileError> {
        if let Some(hit) = self.entries.get(&fingerprint) {
            self.hits += 1;
            return Ok(Arc::clone(hit));
        }
        self.misses += 1;
        let compiled = Arc::new(compile()?);
        self.entries.insert(fingerprint, Arc::clone(&compiled));
        Ok(compiled)
    }

    /// Peek without counting or compiling.
    #[must_use]
    pub fn peek(&self, fingerprint: u64) -> Option<Arc<Compiled>> {
        self.entries.get(&fingerprint).cloned()
    }

    /// Counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.entries.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_core::{CompilerOptions, CypressCompiler};
    use cypress_sim::MachineConfig;

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_kernel() {
        let machine = MachineConfig::test_gpu();
        let (reg, mapping, args) = gemm::build(64, 64, 64, &machine);
        let compiler = CypressCompiler::new(CompilerOptions {
            machine,
            ..Default::default()
        });
        let fp = compiler.fingerprint(&reg, &mapping, "gemm", &args);

        let mut cache = KernelCache::new();
        let mut pipeline_runs = 0;
        let first = cache
            .get_or_compile(fp, || {
                pipeline_runs += 1;
                compiler.compile(&reg, &mapping, "gemm", &args)
            })
            .unwrap();
        let second = cache
            .get_or_compile(fp, || {
                pipeline_runs += 1;
                compiler.compile(&reg, &mapping, "gemm", &args)
            })
            .unwrap();
        assert_eq!(
            pipeline_runs, 1,
            "cache hit must not re-run the pass pipeline"
        );
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the identical kernel"
        );
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn failures_are_not_cached() {
        let mut cache = KernelCache::new();
        let err = cache.get_or_compile(7, || {
            Err(cypress_core::CompileError::Backend("boom".into()))
        });
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later success under the same key still compiles.
        let machine = MachineConfig::test_gpu();
        let (reg, mapping, args) = gemm::build(64, 64, 64, &machine);
        let compiler = CypressCompiler::new(CompilerOptions {
            machine,
            ..Default::default()
        });
        cache
            .get_or_compile(7, || compiler.compile(&reg, &mapping, "gemm", &args))
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }
}
