//! The compiled-kernel cache.
//!
//! Keys are the stable fingerprints of [`cypress_core::fingerprint()`]: a
//! fingerprint covers the task registry, mapping specification, entry
//! name, entry argument shapes, target machine, and codegen-affecting
//! compiler options — everything that determines the compiled kernel. A
//! hit therefore returns the *identical* [`Compiled`] (shared via `Arc`)
//! and skips the Fig. 6 pass pipeline entirely, which is what makes
//! repeated launches of a steady-state serving workload cheap.
//!
//! The cache is unbounded by default. Autotuning multiplies the number
//! of compiled variants per session (every candidate of a mapping space
//! passes through here), so [`KernelCache::set_capacity`] installs an
//! LRU bound: when an insert exceeds the capacity, least-recently-used
//! entries are evicted — never the entry the in-flight
//! [`KernelCache::get_or_compile`] just produced, which is pinned until
//! it has been returned to the caller.

use cypress_core::{CompileError, Compiled};
use std::collections::HashMap;
use std::sync::Arc;

/// Hit/miss counters for observability and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that ran the compiler.
    pub misses: u64,
    /// Entries dropped by the LRU bound.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

impl CacheStats {
    /// Hit fraction over all lookups (0 when the cache is cold).
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One resident kernel plus its recency stamp.
#[derive(Debug)]
struct Entry {
    compiled: Arc<Compiled>,
    last_used: u64,
}

/// Fingerprint-keyed store of compiled kernels with an optional LRU
/// capacity.
#[derive(Debug, Default)]
pub struct KernelCache {
    entries: HashMap<u64, Entry>,
    capacity: Option<usize>,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl KernelCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        KernelCache::default()
    }

    /// An empty cache holding at most `capacity` kernels (clamped to at
    /// least 1 — a cache that cannot hold the kernel it just compiled
    /// would thrash every lookup).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        let mut cache = KernelCache::new();
        cache.set_capacity(Some(capacity));
        cache
    }

    /// Install (or remove, with `None`) the LRU bound. Shrinking below
    /// the current occupancy evicts least-recently-used entries
    /// immediately.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        self.capacity = capacity.map(|c| c.max(1));
        self.evict_over_capacity(None);
    }

    /// The current LRU bound, if any.
    #[must_use]
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Evict LRU entries until the bound holds, never touching `pin`.
    fn evict_over_capacity(&mut self, pin: Option<u64>) {
        let Some(cap) = self.capacity else { return };
        while self.entries.len() > cap {
            let victim = self
                .entries
                .iter()
                .filter(|(fp, _)| Some(**fp) != pin)
                .min_by_key(|(_, e)| e.last_used)
                .map(|(fp, _)| *fp);
            match victim {
                Some(fp) => {
                    self.entries.remove(&fp);
                    self.evictions += 1;
                }
                None => break,
            }
        }
    }

    /// Look up `fingerprint`, running `compile` only on a miss. The
    /// produced entry is pinned against eviction for the duration of the
    /// call, so a bounded cache always returns a resident kernel.
    ///
    /// # Errors
    ///
    /// Propagates the compiler's [`CompileError`] (failures are not
    /// cached; a later retry recompiles).
    pub fn get_or_compile(
        &mut self,
        fingerprint: u64,
        compile: impl FnOnce() -> Result<Compiled, CompileError>,
    ) -> Result<Arc<Compiled>, CompileError> {
        self.clock += 1;
        if let Some(hit) = self.entries.get_mut(&fingerprint) {
            hit.last_used = self.clock;
            self.hits += 1;
            return Ok(Arc::clone(&hit.compiled));
        }
        self.misses += 1;
        let compiled = Arc::new(compile()?);
        self.entries.insert(
            fingerprint,
            Entry {
                compiled: Arc::clone(&compiled),
                last_used: self.clock,
            },
        );
        self.evict_over_capacity(Some(fingerprint));
        Ok(compiled)
    }

    /// Peek without counting, compiling, or refreshing recency.
    #[must_use]
    pub fn peek(&self, fingerprint: u64) -> Option<Arc<Compiled>> {
        self.entries
            .get(&fingerprint)
            .map(|e| Arc::clone(&e.compiled))
    }

    /// Counters and occupancy.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.entries.len(),
        }
    }

    /// Drop every entry (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_core::{CompilerOptions, CypressCompiler};
    use cypress_sim::MachineConfig;

    fn compiler_and_program() -> (
        CypressCompiler,
        (
            cypress_core::TaskRegistry,
            cypress_core::MappingSpec,
            Vec<cypress_core::EntryArg>,
        ),
    ) {
        let machine = MachineConfig::test_gpu();
        let parts = gemm::build(64, 64, 64, &machine).unwrap();
        let compiler = CypressCompiler::new(CompilerOptions {
            machine,
            ..Default::default()
        });
        (compiler, parts)
    }

    #[test]
    fn second_lookup_is_a_hit_and_shares_the_kernel() {
        let (compiler, (reg, mapping, args)) = compiler_and_program();
        let fp = compiler.fingerprint(&reg, &mapping, "gemm", &args);

        let mut cache = KernelCache::new();
        let mut pipeline_runs = 0;
        let first = cache
            .get_or_compile(fp, || {
                pipeline_runs += 1;
                compiler.compile(&reg, &mapping, "gemm", &args)
            })
            .unwrap();
        let second = cache
            .get_or_compile(fp, || {
                pipeline_runs += 1;
                compiler.compile(&reg, &mapping, "gemm", &args)
            })
            .unwrap();
        assert_eq!(
            pipeline_runs, 1,
            "cache hit must not re-run the pass pipeline"
        );
        assert!(
            Arc::ptr_eq(&first, &second),
            "hit returns the identical kernel"
        );
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.evictions, stats.entries),
            (1, 1, 0, 1)
        );
    }

    #[test]
    fn failures_are_not_cached() {
        let mut cache = KernelCache::new();
        let err = cache.get_or_compile(7, || {
            Err(cypress_core::CompileError::Backend("boom".into()))
        });
        assert!(err.is_err());
        assert_eq!(cache.stats().entries, 0);
        // A later success under the same key still compiles.
        let (compiler, (reg, mapping, args)) = compiler_and_program();
        cache
            .get_or_compile(7, || compiler.compile(&reg, &mapping, "gemm", &args))
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn lru_eviction_never_evicts_the_in_flight_compile() {
        let (compiler, (reg, mapping, args)) = compiler_and_program();
        let compile = || compiler.compile(&reg, &mapping, "gemm", &args);

        // Capacity 1: every new key must evict the *old* entry, never the
        // one just compiled (the pinned in-flight insert).
        let mut cache = KernelCache::with_capacity(1);
        cache.get_or_compile(1, compile).unwrap();
        let b = cache.get_or_compile(2, compile).unwrap();
        assert!(cache.peek(1).is_none(), "LRU entry evicted");
        let resident = cache.peek(2).expect("in-flight compile survives");
        assert!(Arc::ptr_eq(&b, &resident));
        let stats = cache.stats();
        assert_eq!((stats.evictions, stats.entries), (1, 1));
        // And the survivor is a genuine hit afterwards.
        cache.get_or_compile(2, compile).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn lru_order_follows_use_not_insertion() {
        let (compiler, (reg, mapping, args)) = compiler_and_program();
        let compile = || compiler.compile(&reg, &mapping, "gemm", &args);

        let mut cache = KernelCache::with_capacity(2);
        cache.get_or_compile(1, compile).unwrap();
        cache.get_or_compile(2, compile).unwrap();
        // Touch 1 so 2 becomes least recently used.
        cache.get_or_compile(1, compile).unwrap();
        cache.get_or_compile(3, compile).unwrap();
        assert!(cache.peek(1).is_some(), "recently used entry survives");
        assert!(cache.peek(2).is_none(), "LRU entry evicted");
        assert!(cache.peek(3).is_some());
    }

    #[test]
    fn shrinking_capacity_evicts_immediately_and_zero_clamps_to_one() {
        let (compiler, (reg, mapping, args)) = compiler_and_program();
        let compile = || compiler.compile(&reg, &mapping, "gemm", &args);

        let mut cache = KernelCache::new();
        for fp in 0..4u64 {
            cache.get_or_compile(fp, compile).unwrap();
        }
        assert_eq!(cache.stats().entries, 4);
        cache.set_capacity(Some(0));
        assert_eq!(cache.capacity(), Some(1), "zero clamps to one");
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 3);
        assert!(cache.peek(3).is_some(), "most recent survives the shrink");
    }
}
