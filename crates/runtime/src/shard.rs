//! Graph sharding across the devices of a [`Topology`].
//!
//! Under [`PlacementPolicy::Sharded`] the session partitions a
//! [`TaskGraph`] across `N` simulated devices before launching it: every
//! node is assigned a device, and every tensor-buffer edge that crosses
//! a device boundary is replaced by an explicit *transfer node* — a
//! first-class communication kernel (see
//! [`cypress_core::kernels::comm`]) that the scheduler charges to the
//! link connecting the two devices instead of to any device's SMs.
//!
//! The sharder mirrors the fusion planner's shape (see [`crate::fuse`]):
//! the crate-internal `plan` entry point returns a [`ShardPlan`]
//! holding the rewritten graph plus the
//! bookkeeping to map results back to the original addressing, and the
//! session re-addresses launch results through it exactly like it does
//! through a [`crate::fuse::FusionPlan`]. Because transfer kernels are
//! bitwise copies and the all-reduce combine is tiling-independent,
//! functional results are bitwise identical across placement policies
//! and device counts; only the timeline changes.
//!
//! Placement is deterministic and cheap, in node-id order (which is the
//! graph's schedule order — producers have lower ids):
//!
//! - *root* nodes (no tensor-buffer inputs) round-robin across devices,
//!   so independent fan-out work spreads immediately;
//! - every other node follows its *heaviest input*: the device holding
//!   the most producer bytes wins (fewest bytes crossing a link), ties
//!   broken toward the least-loaded device, then the lowest id.

use crate::error::RuntimeError;
use crate::graph::{Binding, NodeId, TaskGraph};
use crate::program::Program;
use cypress_core::kernels::comm;
use cypress_core::Shape;
use cypress_sim::Topology;
use std::collections::HashMap;
use std::sync::Arc;

/// How a [`crate::Session`] places a graph's nodes onto simulated
/// devices (mirrors [`crate::SchedulePolicy`] and
/// [`crate::MappingPolicy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPolicy {
    /// Everything runs on one device — bit-for-bit identical to a
    /// session without a placement layer.
    #[default]
    SingleDevice,
    /// Partition the graph across `devices` simulated devices connected
    /// by NVLink-class links, inserting explicit transfer kernels on
    /// every cross-device edge. `Sharded { devices: 1 }` is exactly
    /// [`PlacementPolicy::SingleDevice`], timeline included. Functional
    /// results are bitwise identical at every device count.
    Sharded {
        /// Number of simulated devices (clamped to at least 1).
        devices: usize,
    },
}

impl PlacementPolicy {
    /// The device count this policy schedules over.
    #[must_use]
    pub fn devices(self) -> usize {
        match self {
            PlacementPolicy::SingleDevice => 1,
            PlacementPolicy::Sharded { devices } => devices.max(1),
        }
    }
}

/// One transfer node the sharder inserted on a cross-device edge.
#[derive(Debug, Clone)]
pub struct ShardTransfer {
    /// The transfer node in the sharded graph.
    pub node: NodeId,
    /// Index into [`Topology::links`] of the link it travels.
    pub link: usize,
    /// Producer's device.
    pub src: usize,
    /// Consumer's device.
    pub dst: usize,
    /// Bytes moved across the link.
    pub bytes: f64,
}

/// The result of sharding a graph: the rewritten graph plus the
/// bookkeeping to map results back to the original addressing (the
/// placement analogue of [`crate::fuse::FusionPlan`]).
#[derive(Debug)]
pub struct ShardPlan {
    /// The sharded graph, with transfer nodes inserted before their
    /// consumers.
    pub graph: TaskGraph,
    /// Device of every sharded-graph node (transfer nodes live on their
    /// destination device; their launch is charged to the link).
    device_of: Vec<usize>,
    /// For every sharded-graph node, the original node it came from
    /// (`None` for inserted transfer nodes).
    origin: Vec<Option<usize>>,
    /// Per original node, per parameter: where that parameter's buffer
    /// lives in the sharded graph (always `Some` — sharding never drops
    /// a node).
    param_map: Vec<Vec<Option<(usize, usize)>>>,
    /// Every inserted transfer, in insertion order.
    pub transfers: Vec<ShardTransfer>,
}

impl ShardPlan {
    /// Where original `(node, param)` lives in the sharded graph.
    #[must_use]
    pub fn target(&self, node: usize, param: usize) -> Option<(usize, usize)> {
        *self.param_map.get(node)?.get(param)?
    }

    /// Device of sharded-graph node `node`.
    #[must_use]
    pub fn device(&self, node: usize) -> usize {
        self.device_of.get(node).copied().unwrap_or(0)
    }

    /// The original node behind sharded-graph node `node` (`None` for
    /// inserted transfer nodes).
    #[must_use]
    pub fn origin(&self, node: usize) -> Option<usize> {
        self.origin.get(node).copied().flatten()
    }

    /// `true` when no edge crossed a device boundary.
    #[must_use]
    pub fn is_comm_free(&self) -> bool {
        self.transfers.is_empty()
    }

    /// The transfer riding sharded-graph node `node`, if it is one.
    #[must_use]
    pub fn transfer_of(&self, node: usize) -> Option<&ShardTransfer> {
        self.transfers.iter().find(|t| t.node.index() == node)
    }
}

/// Bytes of one node's parameter buffers — the placement load metric.
fn node_bytes(graph: &TaskGraph, node: usize) -> f64 {
    graph.nodes()[node]
        .program
        .args
        .iter()
        .map(|a| comm::tensor_bytes(a.rows, a.cols))
        .sum()
}

/// Assign every original node a device: roots round-robin, everything
/// else follows its heaviest input (ties: least-loaded, then lowest
/// device id). Deterministic in node-id order.
fn place(graph: &TaskGraph, devices: usize) -> Vec<usize> {
    let mut device = vec![0usize; graph.len()];
    let mut load = vec![0.0f64; devices];
    let mut roots_seen = 0usize;
    for (i, node) in graph.nodes().iter().enumerate() {
        let mut in_bytes = vec![0.0f64; devices];
        let mut has_edge = false;
        for b in &node.bindings {
            if let Binding::Output { node: src, param } = b {
                has_edge = true;
                let arg = &graph.nodes()[src.index()].program.args[*param];
                in_bytes[device[src.index()]] += comm::tensor_bytes(arg.rows, arg.cols);
            }
        }
        let dev = if has_edge {
            (0..devices)
                .max_by(|&a, &b| {
                    in_bytes[a]
                        .total_cmp(&in_bytes[b])
                        .then(load[b].total_cmp(&load[a]))
                        .then(b.cmp(&a))
                })
                .unwrap_or(0)
        } else {
            let d = roots_seen % devices;
            roots_seen += 1;
            d
        };
        device[i] = dev;
        load[dev] += node_bytes(graph, i);
    }
    device
}

/// Re-place `moved` — incomplete nodes stranded on a lost device — onto
/// the `survivors`, mirroring [`place`]'s heaviest-input heuristic
/// against the *current* assignment in `device_of` (which the fault
/// layer rewrites in place). Nodes are re-placed in id order: each
/// follows the survivor holding the most of its producer bytes, ties
/// broken toward the least-loaded survivor, then the lowest device id;
/// nodes with no surviving-producer bytes go to the least-loaded
/// survivor. `devices` is the topology's device count (dead ones
/// included), so load is tracked per physical device. Returns the moved
/// nodes' names in re-plan order. Deterministic: same inputs, same
/// placement.
pub(crate) fn replan(
    graph: &TaskGraph,
    device_of: &mut [usize],
    moved: &[usize],
    survivors: &[usize],
    devices: usize,
) -> Vec<String> {
    let mut load = vec![0.0f64; devices];
    for i in 0..graph.len() {
        if let Some(&d) = device_of.get(i) {
            if let Some(slot) = load.get_mut(d) {
                *slot += node_bytes(graph, i);
            }
        }
    }
    let mut names = Vec::with_capacity(moved.len());
    for &i in moved {
        let node = &graph.nodes()[i];
        let mut in_bytes = vec![0.0f64; devices];
        let mut has_edge = false;
        for b in &node.bindings {
            if let Binding::Output { node: src, param } = b {
                let sdev = device_of[src.index()];
                if survivors.contains(&sdev) {
                    has_edge = true;
                    let arg = &graph.nodes()[src.index()].program.args[*param];
                    in_bytes[sdev] += comm::tensor_bytes(arg.rows, arg.cols);
                }
            }
        }
        let dev = if has_edge {
            survivors
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    in_bytes[a]
                        .total_cmp(&in_bytes[b])
                        .then(load[b].total_cmp(&load[a]))
                        .then(b.cmp(&a))
                })
                .unwrap_or(0)
        } else {
            survivors
                .iter()
                .copied()
                .max_by(|&a, &b| load[b].total_cmp(&load[a]).then(b.cmp(&a)))
                .unwrap_or(0)
        };
        device_of[i] = dev;
        load[dev] += node_bytes(graph, i);
        names.push(node.name.clone());
    }
    names
}

/// Shard `graph` across the devices of `topology`: place every node,
/// then rebuild the graph with an explicit transfer node on every
/// cross-device tensor-buffer edge (one per distinct
/// `(producer, param, destination device)` — a buffer consumed twice on
/// the same remote device crosses the link once).
///
/// # Errors
///
/// Returns [`RuntimeError::BadTopology`] when the topology fails its
/// own validation or lacks a link between two devices an edge connects,
/// and propagates compile/graph errors from building the transfer
/// programs.
pub(crate) fn plan(graph: &TaskGraph, topology: &Topology) -> Result<ShardPlan, RuntimeError> {
    topology
        .validate()
        .map_err(|what| RuntimeError::BadTopology { what })?;
    let devices = topology.device_count();
    let device = place(graph, devices);

    let mut sharded = TaskGraph::new();
    let mut device_of = Vec::new();
    let mut origin = Vec::new();
    let mut param_map: Vec<Vec<Option<(usize, usize)>>> = Vec::with_capacity(graph.len());
    let mut transfers = Vec::new();
    let mut new_id: Vec<NodeId> = Vec::with_capacity(graph.len());
    // (producer, param, destination device) -> inserted transfer node.
    let mut xfer_cache: HashMap<(usize, usize, usize), NodeId> = HashMap::new();

    for (i, node) in graph.nodes().iter().enumerate() {
        let dev = device[i];
        let mut bindings = Vec::with_capacity(node.bindings.len());
        for b in &node.bindings {
            let Binding::Output { node: src, param } = b else {
                bindings.push(b.clone());
                continue;
            };
            let (src_idx, param) = (src.index(), *param);
            let sdev = device[src_idx];
            if sdev == dev {
                bindings.push(Binding::output(new_id[src_idx], param));
                continue;
            }
            let xfer = match xfer_cache.get(&(src_idx, param, dev)) {
                Some(&id) => id,
                None => {
                    let producer = &graph.nodes()[src_idx];
                    let arg = &producer.program.args[param];
                    let link = topology.link_between(sdev, dev).ok_or_else(|| {
                        RuntimeError::BadTopology {
                            what: format!(
                                "edge `{}`.{param} -> `{}` needs a link between device {sdev} \
                                 and device {dev}, but the topology has none",
                                producer.name, node.name
                            ),
                        }
                    })?;
                    let program = Program::from_parts(
                        comm::build_transfer(arg.rows, arg.cols, &topology.devices[dev])?,
                        "xfer",
                    )
                    .with_space(
                        Arc::new(comm::TransferSpace),
                        Shape::of(&[arg.rows, arg.cols]),
                    );
                    let id = sharded.add_node(
                        &format!("xfer:{}.{param}->d{dev}", producer.name),
                        program,
                        vec![Binding::Zeros, Binding::output(new_id[src_idx], param)],
                    )?;
                    device_of.push(dev);
                    origin.push(None);
                    transfers.push(ShardTransfer {
                        node: id,
                        link,
                        src: sdev,
                        dst: dev,
                        bytes: comm::tensor_bytes(arg.rows, arg.cols),
                    });
                    xfer_cache.insert((src_idx, param, dev), id);
                    id
                }
            };
            bindings.push(Binding::output(xfer, 0));
        }
        let id = sharded.add_node(&node.name, node.program.clone(), bindings)?;
        if node.retain {
            sharded.retain(id)?;
        }
        device_of.push(dev);
        origin.push(Some(i));
        param_map.push(
            (0..node.program.args.len())
                .map(|p| Some((id.index(), p)))
                .collect(),
        );
        new_id.push(id);
    }

    Ok(ShardPlan {
        graph: sharded,
        device_of,
        origin,
        param_map,
        transfers,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cypress_core::kernels::gemm;
    use cypress_sim::MachineConfig;

    fn gemm_program(d: usize) -> Program {
        Program::from_parts(
            gemm::build(d, d, d, &MachineConfig::test_gpu()).unwrap(),
            "gemm",
        )
    }

    fn root(graph: &mut TaskGraph, name: &str, d: usize) -> NodeId {
        graph
            .add_node(
                name,
                gemm_program(d),
                vec![
                    Binding::Zeros,
                    Binding::external(&format!("{name}A")),
                    Binding::external(&format!("{name}B")),
                ],
            )
            .unwrap()
    }

    #[test]
    fn roots_round_robin_without_transfers() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        for i in 0..4 {
            root(&mut g, &format!("g{i}"), 64);
        }
        let plan = plan(&g, &Topology::nvlink(&machine, 2)).unwrap();
        assert!(plan.is_comm_free());
        assert_eq!(plan.graph.len(), 4);
        assert_eq!(
            (0..4).map(|i| plan.device(i)).collect::<Vec<_>>(),
            vec![0, 1, 0, 1]
        );
        for i in 0..4 {
            assert_eq!(plan.origin(i), Some(i));
            assert_eq!(plan.target(i, 0), Some((i, 0)));
        }
    }

    #[test]
    fn consumers_follow_their_heaviest_input() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        let a = root(&mut g, "a", 64);
        g.add_node(
            "b",
            gemm_program(64),
            vec![
                Binding::Zeros,
                Binding::output(a, 0),
                Binding::external("B"),
            ],
        )
        .unwrap();
        let plan = plan(&g, &Topology::nvlink(&machine, 2)).unwrap();
        // b sits with its producer: no bytes cross a link.
        assert!(plan.is_comm_free());
        assert_eq!(plan.device(0), 0);
        assert_eq!(plan.device(1), 0);
    }

    #[test]
    fn cross_device_edges_get_transfer_nodes() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        let a = root(&mut g, "a", 64);
        let b = root(&mut g, "b", 64);
        // c reads both roots; the loser's buffer must cross the link.
        g.add_node(
            "c",
            gemm_program(64),
            vec![Binding::Zeros, Binding::output(a, 0), Binding::output(b, 0)],
        )
        .unwrap();
        let plan = plan(&g, &Topology::nvlink(&machine, 2)).unwrap();
        assert_eq!(plan.graph.len(), 4, "one transfer node inserted");
        assert_eq!(plan.transfers.len(), 1);
        let t = &plan.transfers[0];
        assert_eq!((t.src, t.dst), (1, 0), "b's buffer moves to c's device");
        assert_eq!(t.bytes, comm::tensor_bytes(64, 64));
        let xfer = &plan.graph.nodes()[t.node.index()];
        assert_eq!(xfer.name, "xfer:b.0->d0");
        assert_eq!(plan.origin(t.node.index()), None);
        assert_eq!(plan.device(t.node.index()), 0);
        assert!(plan.transfer_of(t.node.index()).is_some());
        // Originals survive with full re-addressing.
        for (orig, n) in [(0usize, "a"), (1, "b"), (2, "c")] {
            let (idx, _) = plan.target(orig, 0).unwrap();
            assert_eq!(plan.graph.nodes()[idx].name, n);
        }
    }

    #[test]
    fn shared_remote_buffer_crosses_the_link_once() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        // a's output (128x128) outweighs b's (128x64), so both
        // consumers follow a to device 0 and read b's buffer remotely.
        let a = g
            .add_node(
                "a",
                Program::from_parts(gemm::build(128, 128, 128, &machine).unwrap(), "gemm"),
                vec![
                    Binding::Zeros,
                    Binding::external("aA"),
                    Binding::external("aB"),
                ],
            )
            .unwrap();
        let b = g
            .add_node(
                "b",
                Program::from_parts(gemm::build(128, 64, 64, &machine).unwrap(), "gemm"),
                vec![
                    Binding::Zeros,
                    Binding::external("bA"),
                    Binding::external("bB"),
                ],
            )
            .unwrap();
        for name in ["c", "d"] {
            g.add_node(
                name,
                Program::from_parts(gemm::build(128, 64, 128, &machine).unwrap(), "gemm"),
                vec![Binding::Zeros, Binding::output(a, 0), Binding::output(b, 0)],
            )
            .unwrap();
        }
        let plan = plan(&g, &Topology::nvlink(&machine, 2)).unwrap();
        // One transfer of b's buffer serves both consumers.
        assert_eq!(plan.transfers.len(), 1);
        assert_eq!(plan.graph.len(), 5);
        assert_eq!(plan.transfers[0].bytes, comm::tensor_bytes(128, 64));
    }

    #[test]
    fn single_device_is_the_identity_layout() {
        let machine = MachineConfig::test_gpu();
        let mut g = TaskGraph::new();
        let a = root(&mut g, "a", 64);
        g.add_node(
            "b",
            gemm_program(64),
            vec![
                Binding::Zeros,
                Binding::output(a, 0),
                Binding::external("B"),
            ],
        )
        .unwrap();
        let plan = plan(&g, &Topology::single(machine)).unwrap();
        assert!(plan.is_comm_free());
        assert_eq!(plan.graph.len(), g.len());
        assert!((0..g.len()).all(|i| plan.device(i) == 0));
    }

    #[test]
    fn invalid_topology_is_a_typed_error() {
        let g = TaskGraph::new();
        let empty = Topology {
            devices: Vec::new(),
            links: Vec::new(),
        };
        let err = plan(&g, &empty).unwrap_err();
        assert!(matches!(err, RuntimeError::BadTopology { .. }), "{err}");
    }

    #[test]
    fn policy_device_counts() {
        assert_eq!(PlacementPolicy::SingleDevice.devices(), 1);
        assert_eq!(PlacementPolicy::Sharded { devices: 4 }.devices(), 4);
        assert_eq!(PlacementPolicy::Sharded { devices: 0 }.devices(), 1);
    }
}
