//! Differential tests of fault-tolerant execution.
//!
//! The standing invariant of [`cypress_runtime::FaultPolicy`]: faults
//! change the *timeline*, never the *tensors*. Under `Retry`, a run
//! with seeded transient faults — or a permanent mid-run device loss —
//! retains tensors bitwise identical to the fault-free single-device
//! oracle; under the default `FailFast` every fault surfaces as a typed
//! [`cypress_runtime::RuntimeError`] (never a panic) carrying the
//! partial [`cypress_runtime::GraphReport`]. A zero-fault plan is
//! inert: attaching it under `Retry` reproduces `FailFast` bit for
//! bit, timeline included.

use cypress_core::kernels::{attention, batched, dual_gemm, gemm, gemm_reduction};
use cypress_runtime::{
    Binding, FaultPlan, FaultPolicy, NodeId, PlacementPolicy, Program, RuntimeError,
    SchedulePolicy, Session, TaskGraph,
};
use cypress_sim::MachineConfig;
use cypress_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Uniform problem size: every consumable tensor is `D x D`, so any
/// node's primary output can feed any compatible input slot.
const D: usize = 64;

/// One of the five paper kernels at the uniform size.
fn paper_program(kind: usize, machine: &MachineConfig) -> Program {
    match kind % 5 {
        0 => Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm"),
        1 => Program::from_parts(batched::build(1, D, D, D, machine).unwrap(), "bgemm"),
        2 => Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual"),
        3 => Program::from_parts(gemm_reduction::build(D, D, D, machine).unwrap(), "gr"),
        _ => Program::from_parts(
            attention::build_with(
                attention::Algorithm::Fa2,
                1,
                D,
                D,
                attention::AttentionConfig {
                    br: 64,
                    bc: 64,
                    wgs: 1,
                    pipeline: 1,
                },
            )
            .expect("64-row attention is well-formed"),
            "fa",
        ),
    }
}

/// A random DAG over the paper kernels (same construction as
/// `sharding.rs`): random fan-out/fan-in plus random retain flags.
fn random_graph(
    seed: u64,
    max_nodes: usize,
    machine: &MachineConfig,
) -> (TaskGraph, Vec<NodeId>, Vec<Program>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max_nodes.max(2) + 1);
    let mut graph = TaskGraph::new();
    let mut ids: Vec<NodeId> = Vec::new();
    let mut programs: Vec<Program> = Vec::new();
    for i in 0..n {
        let prog = paper_program(rng.gen_range(0usize..5), machine);
        let outputs = prog.output_indices();
        let mut bindings = Vec::with_capacity(prog.args.len());
        for (pi, arg) in prog.args.iter().enumerate() {
            if outputs.contains(&pi) {
                bindings.push(Binding::Zeros);
                continue;
            }
            let candidates: Vec<usize> = (0..i)
                .filter(|&j| {
                    let src = &programs[j].args[0];
                    (src.rows, src.cols, src.dtype) == (arg.rows, arg.cols, arg.dtype)
                })
                .collect();
            if !candidates.is_empty() && rng.gen_range(0u32..100) < 60 {
                let j = candidates[rng.gen_range(0..candidates.len())];
                bindings.push(Binding::output(ids[j], 0));
            } else {
                bindings.push(Binding::External(format!("x{i}_{pi}")));
            }
        }
        let id = graph
            .add_node(&format!("n{i}"), prog.clone(), bindings)
            .expect("generated bindings are compatible by construction");
        if rng.gen_range(0u32..2) == 0 {
            graph.retain(id).unwrap();
        }
        ids.push(id);
        programs.push(prog);
    }
    (graph, ids, programs)
}

/// Random external inputs matching every `External` binding's parameter.
fn random_inputs(graph: &TaskGraph, seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
    let mut inputs = HashMap::new();
    for node in graph.nodes() {
        for (pi, binding) in node.bindings.iter().enumerate() {
            if let Binding::External(name) = binding {
                let arg = &node.program.args[pi];
                inputs.insert(
                    name.clone(),
                    Tensor::random(arg.dtype, &[arg.rows, arg.cols], &mut rng, -0.5, 0.5),
                );
            }
        }
    }
    inputs
}

/// Assert two runs retained bitwise-identical tensor sets for the
/// original graph's every `(node, param)`; returns how many tensors
/// were compared.
fn assert_runs_match(
    a: &cypress_runtime::GraphRun,
    b: &cypress_runtime::GraphRun,
    ids: &[NodeId],
    programs: &[Program],
    label: &str,
) -> usize {
    let mut compared = 0usize;
    for (i, &id) in ids.iter().enumerate() {
        for pi in 0..programs[i].args.len() {
            match (a.tensor(id, pi), b.tensor(id, pi)) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.data(), y.data(), "node {i} param {pi} diverged ({label})");
                    compared += 1;
                }
                (None, None) => {}
                _ => panic!("retained tensor sets differ ({label})"),
            }
        }
    }
    compared
}

proptest! {
    /// Faults are functionally invisible under `Retry`: random DAGs
    /// launched against seeded transient fault plans at 2 and 4 devices
    /// retain tensors bitwise identical to the fault-free
    /// single-device run, and every injected fault is matched by a
    /// retry in the recovery summary.
    #[test]
    fn retry_matches_the_fault_free_oracle(
        seed in 0u64..1_000_000,
        faults in 1usize..4,
    ) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 4, &machine);
        let inputs = random_inputs(&graph, seed);
        let mut oracle = Session::new(machine.clone());
        let baseline = oracle.launch_functional(&graph, &inputs).unwrap();
        for devices in [2usize, 4] {
            let plan = FaultPlan::seeded(seed, devices, faults);
            let mut session = Session::new(machine.clone())
                .with_placement_policy(PlacementPolicy::Sharded { devices })
                .with_policy(SchedulePolicy::Concurrent { streams: 4 })
                .with_fault_policy(FaultPolicy::Retry { max_attempts: 8, backoff: 0.0 })
                .with_fault_plan(plan);
            let run = session.launch_functional(&graph, &inputs).unwrap();
            let label = format!("seed {seed}, devices {devices}, {faults} seeded faults");
            let compared = assert_runs_match(&baseline, &run, &ids, &programs, &label);
            prop_assert!(compared > 0, "every graph retains at least its sinks");
            let recovery = &run.report.recovery;
            prop_assert_eq!(
                recovery.retries, recovery.faults,
                "transient-only plans retry every injected fault ({})", label
            );
        }
    }

    /// `FailFast` never panics: the same seeded plans either miss (the
    /// run succeeds) or surface as a typed `NodeFailed` carrying the
    /// partial report with the fault on record.
    #[test]
    fn failfast_surfaces_typed_errors(
        seed in 0u64..1_000_000,
        faults in 1usize..4,
    ) {
        let machine = MachineConfig::test_gpu();
        let (graph, _, _) = random_graph(seed, 4, &machine);
        let inputs = random_inputs(&graph, seed);
        let plan = FaultPlan::seeded(seed, 2, faults);
        let mut session = Session::new(machine)
            .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
            .with_policy(SchedulePolicy::Concurrent { streams: 4 })
            .with_fault_plan(plan);
        match session.launch_functional(&graph, &inputs) {
            Ok(run) => prop_assert_eq!(
                run.report.recovery.faults, 0,
                "a successful FailFast run saw no faults"
            ),
            Err(RuntimeError::NodeFailed { node, attempts, report, .. }) => {
                prop_assert_eq!(attempts, 1, "FailFast aborts on the first attempt");
                prop_assert!(report.recovery.faults >= 1);
                prop_assert_eq!(report.recovery.retries, 0);
                prop_assert!(!node.is_empty());
            }
            Err(other) => prop_assert!(false, "unexpected error class: {other}"),
        }
    }

    /// A zero-fault plan under `Retry` is inert: makespan, critical
    /// path, and every node's `(device, stream, start, end)` match the
    /// plain `FailFast` run bit for bit — and so does a plan whose
    /// transient index is never reached.
    #[test]
    fn zero_fault_retry_is_bit_identical_to_failfast(
        seed in 0u64..1_000_000,
        streams in 1usize..5,
    ) {
        let machine = MachineConfig::test_gpu();
        let (graph, _, _) = random_graph(seed, 5, &machine);
        let mut session =
            Session::new(machine.clone()).with_policy(SchedulePolicy::Concurrent { streams });
        let baseline = session.launch_timing(&graph).unwrap();
        let empty = FaultPlan::new();
        let unreached = FaultPlan::new().with_transient(0, 1_000_000);
        for plan in [empty, unreached] {
            let mut faulty = Session::new(machine.clone())
                .with_policy(SchedulePolicy::Concurrent { streams })
                .with_fault_policy(FaultPolicy::Retry { max_attempts: 3, backoff: 16.0 })
                .with_fault_plan(plan);
            let report = faulty.launch_timing(&graph).unwrap();
            prop_assert_eq!(baseline.makespan.to_bits(), report.makespan.to_bits());
            prop_assert_eq!(
                baseline.critical_path.to_bits(),
                report.critical_path.to_bits()
            );
            prop_assert_eq!(baseline.nodes.len(), report.nodes.len());
            prop_assert_eq!(&report.recovery, &cypress_runtime::Recovery::default());
            for (a, b) in baseline.nodes.iter().zip(report.nodes.iter()) {
                prop_assert_eq!(&a.node, &b.node);
                prop_assert_eq!(a.device, b.device);
                prop_assert_eq!(a.stream, b.stream);
                prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
                prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
            }
        }
    }
}

/// An 8-wide fan-out of independent GEMMs — enough queued work per
/// device that a mid-run device loss always strands unexecuted nodes.
fn fanout(machine: &MachineConfig, size: usize) -> (TaskGraph, Vec<NodeId>, Vec<Program>) {
    let program = Program::from_parts(gemm::build(size, size, size, machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let mut ids = Vec::new();
    let mut programs = Vec::new();
    for i in 0..8 {
        let id = graph
            .add_node(
                &format!("g{i}"),
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::External(format!("A{i}")),
                    Binding::External(format!("B{i}")),
                ],
            )
            .unwrap();
        graph.retain(id).unwrap();
        ids.push(id);
        programs.push(program.clone());
    }
    (graph, ids, programs)
}

/// The acceptance claim: a seeded permanent device loss mid-run at 2
/// and at 4 devices completes under `Retry` with tensors bitwise
/// identical to the fault-free run, the victim on the eviction record,
/// stranded nodes re-planned, and the re-shard boundary on the
/// timeline.
#[test]
fn device_loss_mid_run_completes_bitwise() {
    let machine = MachineConfig::test_gpu();
    let (graph, ids, programs) = fanout(&machine, 128);
    let inputs = random_inputs(&graph, 11);
    let mut oracle = Session::new(machine.clone());
    let baseline = oracle.launch_functional(&graph, &inputs).unwrap();
    for devices in [2usize, 4] {
        let mut session = Session::new(machine.clone())
            .with_placement_policy(PlacementPolicy::Sharded { devices })
            .with_policy(SchedulePolicy::Concurrent { streams: 2 });
        let clean = session.launch_timing(&graph).unwrap();
        let victim = devices - 1;
        session.set_fault_policy(FaultPolicy::Retry {
            max_attempts: 3,
            backoff: 0.0,
        });
        session.set_fault_plan(Some(
            FaultPlan::new().with_device_loss(victim, clean.makespan * 0.5),
        ));
        let run = session.launch_functional(&graph, &inputs).unwrap();
        let label = format!("device loss at {devices} devices");
        assert_runs_match(&baseline, &run, &ids, &programs, &label);
        let recovery = &run.report.recovery;
        assert_eq!(recovery.evicted_devices, vec![victim], "{label}");
        assert_eq!(recovery.faults, 1, "{label}");
        assert!(
            !recovery.resharded_nodes.is_empty(),
            "mid-run loss strands queued nodes ({label})"
        );
        assert!(
            recovery.overhead_cycles >= 0.0,
            "losing a device never speeds the run up ({label})"
        );
        assert!(
            run.report
                .nodes
                .iter()
                .any(|n| n.node == format!("reshard:d{victim}")),
            "the re-shard boundary lands on the timeline ({label})"
        );
        assert!(
            run.report
                .nodes
                .iter()
                .filter(|n| !n.node.starts_with("retry:")
                    && !n.node.starts_with("reshard:")
                    && !n.node.starts_with("xfer:"))
                .all(|n| n.device != victim || n.end <= clean.makespan * 0.5),
            "no successful compute span runs on the dead device after the loss ({label})"
        );
    }
}

/// A completed producer stranded on the dead device is drained over
/// the link: the recovery transfer shows up on the timeline and in the
/// recovery summary, and the consumer's tensor is still bit-identical.
#[test]
fn device_loss_drains_stranded_buffers_with_recovery_transfers() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let mut stage1 = Vec::new();
    for i in 0..4 {
        stage1.push(
            graph
                .add_node(
                    &format!("p{i}"),
                    program.clone(),
                    vec![
                        Binding::Zeros,
                        Binding::External(format!("A{i}")),
                        Binding::External(format!("B{i}")),
                    ],
                )
                .unwrap(),
        );
    }
    let mut ids = stage1.clone();
    let mut programs = vec![program.clone(); 4];
    for (i, &p) in stage1.iter().enumerate() {
        let id = graph
            .add_node(
                &format!("c{i}"),
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::output(p, 0),
                    Binding::External(format!("C{i}")),
                ],
            )
            .unwrap();
        graph.retain(id).unwrap();
        ids.push(id);
        programs.push(program.clone());
    }
    let inputs = random_inputs(&graph, 23);
    let mut oracle = Session::new(machine.clone());
    let baseline = oracle.launch_functional(&graph, &inputs).unwrap();

    let mut session = Session::new(machine.clone())
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 1 });
    let clean = session.launch_timing(&graph).unwrap();
    // Kill device 1 the instant its first producer retires: the buffer
    // is complete (memory drains under fail-stop) but its consumer is
    // not, so recovery must move it across the link.
    let first_end = clean
        .nodes
        .iter()
        .filter(|n| n.device == 1 && n.node.starts_with('p'))
        .map(|n| n.end)
        .fold(f64::INFINITY, f64::min);
    assert!(first_end.is_finite(), "device 1 runs at least one producer");
    session.set_fault_policy(FaultPolicy::Retry {
        max_attempts: 3,
        backoff: 0.0,
    });
    session.set_fault_plan(Some(FaultPlan::new().with_device_loss(1, first_end + 1.0)));
    let run = session.launch_functional(&graph, &inputs).unwrap();
    assert_runs_match(&baseline, &run, &ids, &programs, "stranded-buffer drain");
    assert!(
        run.report
            .nodes
            .iter()
            .any(|n| n.node.starts_with("xfer:recover:")),
        "a recovery transfer lands on the timeline:\n{}",
        run.report.breakdown()
    );
    assert_eq!(run.report.recovery.evicted_devices, vec![1]);
}

/// Exhausting the retry budget is a typed error, not a hang: a plan
/// that faults the same node on both of its allowed attempts returns
/// `NodeFailed` with the attempt count and the partial report.
#[test]
fn exhausted_retry_budget_returns_node_failed() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    graph
        .add_node(
            "only",
            program,
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let mut session = Session::new(machine)
        .with_fault_policy(FaultPolicy::Retry {
            max_attempts: 2,
            backoff: 8.0,
        })
        .with_fault_plan(FaultPlan::new().with_transient(0, 0).with_transient(0, 1));
    match session.launch_timing(&graph) {
        Err(RuntimeError::NodeFailed {
            node,
            attempts,
            report,
            ..
        }) => {
            assert_eq!(node, "only");
            assert_eq!(attempts, 2, "both allowed attempts were consumed");
            assert_eq!(report.recovery.faults, 2);
            assert_eq!(
                report.recovery.retries, 1,
                "one retry before the budget ran out"
            );
            assert_eq!(
                report
                    .nodes
                    .iter()
                    .filter(|n| n.node == "retry:only")
                    .count(),
                2,
                "both failed attempts are on the timeline"
            );
        }
        other => panic!("expected NodeFailed, got {other:?}"),
    }
}

/// Deadlines are typed errors with partial reports — and generous
/// deadlines never fire. Both scheduler paths (serial post-hoc and
/// engine in-flight) enforce them.
#[test]
fn deadlines_return_typed_errors_with_partial_reports() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fanout(&machine, 128);
    for policy in [
        SchedulePolicy::Serial,
        SchedulePolicy::Concurrent { streams: 4 },
    ] {
        let mut session = Session::new(machine.clone()).with_policy(policy);
        let clean = session.launch_timing(&graph).unwrap();

        session.set_graph_deadline(Some(clean.makespan * 0.5));
        match session.launch_timing(&graph) {
            Err(RuntimeError::DeadlineExceeded {
                what,
                deadline,
                at,
                report,
            }) => {
                assert_eq!(what, "graph", "{policy:?}");
                assert!(at > deadline, "{policy:?}");
                assert!(
                    !report.nodes.is_empty() && report.nodes.len() < clean.nodes.len(),
                    "the partial report stops mid-graph ({policy:?})"
                );
            }
            other => panic!("expected DeadlineExceeded under {policy:?}, got {other:?}"),
        }
        session.set_graph_deadline(Some(clean.makespan * 2.0));
        session
            .launch_timing(&graph)
            .expect("a generous graph deadline never fires");
        session.set_graph_deadline(None);

        session.set_node_deadline(Some(1.0));
        match session.launch_timing(&graph) {
            Err(RuntimeError::DeadlineExceeded { what, .. }) => {
                assert!(
                    what.starts_with('g'),
                    "node deadlines name the offender, got {what:?} ({policy:?})"
                );
            }
            other => panic!("expected node DeadlineExceeded under {policy:?}, got {other:?}"),
        }
        session.set_node_deadline(Some(clean.makespan * 2.0));
        session
            .launch_timing(&graph)
            .expect("a generous node deadline never fires");
    }
}

/// `FailFast` with a device-loss plan surfaces `DeviceLost` with the
/// victim and cycle on the error.
#[test]
fn failfast_device_loss_is_typed() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fanout(&machine, 128);
    let mut session = Session::new(machine)
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let clean = session.launch_timing(&graph).unwrap();
    session.set_fault_plan(Some(
        FaultPlan::new().with_device_loss(1, clean.makespan * 0.5),
    ));
    match session.launch_timing(&graph) {
        Err(RuntimeError::DeviceLost {
            device,
            cycle,
            report,
        }) => {
            assert_eq!(device, 1);
            assert!(cycle >= clean.makespan * 0.5);
            assert_eq!(report.recovery.evicted_devices, vec![1]);
        }
        other => panic!("expected DeviceLost, got {other:?}"),
    }
}

/// Slowdown and link-degradation windows stretch the clock without
/// touching tensors: the degraded run completes under either policy
/// with a makespan no shorter than the clean run.
#[test]
fn slow_windows_stretch_the_clock_not_the_tensors() {
    let machine = MachineConfig::test_gpu();
    let (graph, ids, programs) = fanout(&machine, 128);
    let inputs = random_inputs(&graph, 37);
    let mut oracle = Session::new(machine.clone());
    let baseline = oracle.launch_functional(&graph, &inputs).unwrap();
    let mut session = Session::new(machine)
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let clean = session.launch_timing(&graph).unwrap();
    session.set_fault_plan(Some(
        FaultPlan::new()
            .with_slowdown(0, 0.0, clean.makespan, 0.5)
            .with_link_degraded(0, 0.0, clean.makespan, 0.25),
    ));
    let run = session.launch_functional(&graph, &inputs).unwrap();
    assert_runs_match(&baseline, &run, &ids, &programs, "slow windows");
    assert!(
        run.report.makespan >= clean.makespan,
        "a half-speed device cannot finish earlier: {} < {}",
        run.report.makespan,
        clean.makespan
    );
    assert_eq!(run.report.recovery.faults, 0, "windows are not faults");
}
