//! Buffer-pool edge cases under graph execution: diamond-shaped sharing
//! (two consumers of one producer), retained nodes never recycling, and
//! reuse counters across repeated `Session` launches.

use cypress_core::kernels::{dual_gemm, gemm};
use cypress_runtime::{Binding, NodeId, Program, Session, TaskGraph};
use cypress_sim::MachineConfig;
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const D: usize = 64;

/// A diamond: one producer feeding two consumers, whose outputs meet in
/// a dual-GEMM sink.
///
/// ```text
///        P
///       / \
///      C1  C2
///       \ /
///        S
/// ```
fn diamond(machine: &MachineConfig, retain_producer: bool) -> (TaskGraph, NodeId, NodeId) {
    let gemm_p = Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm");
    let dual_p = Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual");
    let mut g = TaskGraph::new();
    let p = g
        .add_node(
            "producer",
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let c1 = g
        .add_node(
            "left",
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::output(p, 0),
                Binding::external("B1"),
            ],
        )
        .unwrap();
    let c2 = g
        .add_node(
            "right",
            gemm_p,
            vec![
                Binding::Zeros,
                Binding::output(p, 0),
                Binding::external("B2"),
            ],
        )
        .unwrap();
    let s = g
        .add_node(
            "sink",
            dual_p,
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::output(c1, 0),
                Binding::output(c2, 0),
            ],
        )
        .unwrap();
    if retain_producer {
        g.retain(p).unwrap();
    }
    (g, p, s)
}

fn inputs(seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    ["A", "B", "B1", "B2", "X"]
        .into_iter()
        .map(|n| {
            (
                n.to_string(),
                Tensor::random(DType::F16, &[D, D], &mut rng, -0.5, 0.5),
            )
        })
        .collect()
}

/// Diamond sharing: the producer's buffer is cloned for the first
/// consumer, moved into the second (its last use), and the producer's
/// remaining buffers recycle exactly once — after *both* consumers ran.
#[test]
fn diamond_recycles_the_producer_once_after_both_consumers() {
    let machine = MachineConfig::test_gpu();
    let (graph, p, s) = diamond(&machine, false);
    let mut session = Session::new(machine);
    let run = session.launch_functional(&graph, &inputs(3)).unwrap();

    // The producer was drained: its tensors are gone from the result.
    assert!(run.tensor(p, 0).is_none(), "drained producer is recycled");
    // The sink survives with all four parameters.
    for pi in 0..4 {
        assert!(run.tensor(s, pi).is_some(), "sink param {pi} kept");
    }
    // One `Zeros` acquisition per node. The producer recycles as soon as
    // `right` drains it — *within* the launch — so the sink's `Zeros`
    // is already served from the pool on a cold session.
    let stats = session.pool_stats();
    assert_eq!(stats.acquired, 4, "one Zeros binding per node");
    assert_eq!(stats.reused, 1, "sink reuses the drained producer's buffer");
    // Parked afterward: producer {A, B} minus the one the sink took,
    // left {producer-clone, B1}, right {producer-output, B2}.
    assert_eq!(stats.free, 5, "five dead buffers parked after the launch");
}

/// A retained producer is never recycled, even with two consumers: its
/// tensors stay in the result and out of the pool, and consumers clone
/// instead of moving its buffer.
#[test]
fn retained_producer_is_never_recycled() {
    let machine = MachineConfig::test_gpu();
    let (graph, p, _) = diamond(&machine, true);
    let mut session = Session::new(machine);
    let ins = inputs(4);
    let run = session.launch_functional(&graph, &ins).unwrap();

    // All three producer params survive: the freshly computed output and
    // the cloned externals.
    for pi in 0..3 {
        assert!(run.tensor(p, pi).is_some(), "retained param {pi} kept");
    }
    assert_eq!(
        run.tensor(p, 1).unwrap().data(),
        ins["A"].data(),
        "retained input param is the external tensor"
    );
    // Both consumers cloned: the producer's buffers never reached the
    // pool, so only the consumers' dead params are parked (2 + 2).
    assert_eq!(session.pool_stats().free, 4);

    // The retained output is actually the product, not zeros.
    assert!(run.tensor(p, 0).unwrap().data().iter().any(|&v| v != 0.0));
}

/// Retaining a sink is a no-op for recycling: sinks are always kept.
#[test]
fn retained_sink_matches_plain_sink() {
    let machine = MachineConfig::test_gpu();
    let (graph_plain, _, s1) = diamond(&machine, false);
    let (mut graph_retained, _, s2) = diamond(&machine, false);
    graph_retained.retain(s2).unwrap();

    let mut a = Session::new(machine.clone());
    let ra = a.launch_functional(&graph_plain, &inputs(5)).unwrap();
    let mut b = Session::new(machine);
    let rb = b.launch_functional(&graph_retained, &inputs(5)).unwrap();

    assert_eq!(
        ra.tensor(s1, 0).unwrap().data(),
        rb.tensor(s2, 0).unwrap().data()
    );
    assert_eq!(a.pool_stats(), b.pool_stats(), "identical pool traffic");
}

/// Reuse counters across repeated launches: every warm launch serves all
/// of its `Zeros` acquisitions from the pool, and the counters advance
/// by exactly one launch's worth each time.
#[test]
fn pool_reuse_is_counted_across_repeated_launches() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = diamond(&machine, false);
    let mut session = Session::new(machine);
    let ins = inputs(6);

    session.launch_functional(&graph, &ins).unwrap();
    let cold = session.pool_stats();
    // Even the cold launch reuses once: the drained producer's buffer
    // comes back for the sink's `Zeros` within the same launch.
    assert_eq!((cold.acquired, cold.reused), (4, 1));

    for launch in 1..=3u64 {
        session.launch_functional(&graph, &ins).unwrap();
        let warm = session.pool_stats();
        assert_eq!(warm.acquired, 4 * (launch + 1));
        assert_eq!(
            warm.reused,
            4 * launch + 1,
            "warm launch {launch} serves every Zeros from the pool"
        );
    }

    // Clearing the pool drops parked buffers but keeps counters.
    let before = session.pool_stats();
    session.clear();
    let after = session.pool_stats();
    assert_eq!(after.free, 0);
    assert_eq!(after.acquired, before.acquired);
    assert_eq!(after.reused, before.reused);
}

/// A failed launch leaks nothing: under `FailFast` a firing fault plan
/// returns a typed error and every in-flight buffer — including the
/// sink's undelivered result params — is parked back in the pool,
/// leaving the session warm for the next launch.
#[test]
fn failed_launch_reclaims_every_in_flight_buffer() {
    use cypress_runtime::{FaultPlan, RuntimeError};
    let machine = MachineConfig::test_gpu();
    let (graph, _, s) = diamond(&machine, false);
    let ins = inputs(7);

    let mut clean = Session::new(machine.clone());
    clean.launch_functional(&graph, &ins).unwrap();
    let ok = clean.pool_stats();

    let mut session = Session::new(machine).with_fault_plan(FaultPlan::new().with_transient(0, 0));
    let err = session.launch_functional(&graph, &ins).unwrap_err();
    assert!(matches!(err, RuntimeError::NodeFailed { .. }), "{err}");
    let failed = session.pool_stats();
    assert_eq!(failed.acquired, ok.acquired, "same functional traffic");
    assert_eq!(
        failed.free,
        ok.free + 4,
        "the sink's four undelivered params are parked too"
    );

    // The pool really is warm: dropping the plan, the next launch
    // succeeds and serves every `Zeros` acquisition from the pool.
    session.set_fault_plan(None);
    let run = session.launch_functional(&graph, &ins).unwrap();
    let warm = session.pool_stats();
    assert_eq!(
        warm.reused,
        failed.reused + 4,
        "all Zeros served from the reclaimed buffers"
    );
    assert!(run.tensor(s, 0).is_some());
}

#[test]
fn bounded_pool_never_exceeds_its_cap_across_a_randomized_sweep() {
    use rand::Rng;
    // A shape-diverse serving sweep: random graphs of gemms at varying
    // sizes park buffers of many distinct `(dtype, element count)`
    // classes. A bounded pool must hold `free <= cap` after every
    // launch — the unbounded pool's parked set only ever grows.
    let machine = MachineConfig::test_gpu();
    let cap = 3usize;
    let mut bounded = Session::new(machine.clone()).with_pool_capacity(cap);
    let mut unbounded = Session::new(machine.clone());
    let mut rng = StdRng::seed_from_u64(41);
    let mut unbounded_peak = 0usize;
    for round in 0..16 {
        let size = 64 * rng.gen_range(1usize..4);
        let program = Program::from_parts(gemm::build(size, size, size, &machine).unwrap(), "gemm");
        let mut g = TaskGraph::new();
        let a = g
            .add_node(
                "a",
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        g.add_node(
            "b",
            program,
            vec![
                Binding::Zeros,
                Binding::output(a, 0),
                Binding::external("B"),
            ],
        )
        .unwrap();
        let mut rng_t = StdRng::seed_from_u64(round);
        let ins = HashMap::from([
            (
                "A".to_string(),
                Tensor::random(DType::F16, &[size, size], &mut rng_t, -0.5, 0.5),
            ),
            (
                "B".to_string(),
                Tensor::random(DType::F16, &[size, size], &mut rng_t, -0.5, 0.5),
            ),
        ]);
        bounded.launch_functional(&g, &ins).unwrap();
        unbounded.launch_functional(&g, &ins).unwrap();
        let stats = bounded.pool_stats();
        assert!(
            stats.free <= cap,
            "round {round}: bounded pool parked {} > cap {cap}",
            stats.free
        );
        unbounded_peak = unbounded_peak.max(unbounded.pool_stats().free);
    }
    let stats = bounded.pool_stats();
    assert_eq!(stats.capacity, Some(cap));
    assert!(
        stats.evicted > 0,
        "the sweep must actually trigger eviction"
    );
    assert!(
        unbounded_peak > cap,
        "the sweep parks more than the cap when unbounded (peak {unbounded_peak})"
    );
}
