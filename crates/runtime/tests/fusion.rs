//! Property suite for the graph-level fusion rewriter.
//!
//! Random DAGs over the paper kernels (plus the standalone
//! row-reduction) are launched twice — [`FusionPolicy::Off`] and
//! [`FusionPolicy::Auto`] — and checked three ways:
//!
//! 1. **Functional differential**: every output tensor the unfused run
//!    retains must be *bitwise identical* under `Auto` (fusion never
//!    changes results, only launch count).
//! 2. **Makespan**: the fused graph's makespan never exceeds the
//!    unfused serial sum — structural, because the session's simulator
//!    gate only applies rewrites that win.
//! 3. **Coverage**: across the generated corpus at least one rewrite of
//!    each rule fires (otherwise the suite would vacuously pass).
//!
//! Degenerate shapes both policies must treat identically — the empty
//! graph, a single node, and a graph that fuses down to a single node —
//! are locked down alongside.

use cypress_core::kernels::{batched, dual_gemm, gemm, gemm_reduction, reduction};
use cypress_runtime::{Binding, FusionPolicy, NodeId, Program, SchedulePolicy, Session, TaskGraph};
use cypress_sim::MachineConfig;
use cypress_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Uniform problem size: every consumable tensor is `D x D`.
const D: usize = 64;

/// One of the paper kernels (or the standalone reduction) at the
/// uniform size.
fn node_program(kind: usize, machine: &MachineConfig) -> Program {
    match kind % 6 {
        0 | 5 => Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm"),
        1 => Program::from_parts(batched::build(1, D, D, D, machine).unwrap(), "bgemm"),
        2 => Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual"),
        3 => Program::from_parts(gemm_reduction::build(D, D, D, machine).unwrap(), "gr"),
        _ => Program::from_parts(reduction::build(D, D, machine).unwrap(), "reduce"),
    }
}

/// A random DAG mixing the six node kinds; GEMM is weighted up so
/// GEMM→GEMM chains and GEMM+reduction pairs occur regularly.
fn random_graph(
    seed: u64,
    max_nodes: usize,
    machine: &MachineConfig,
) -> (TaskGraph, Vec<NodeId>, Vec<Program>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max_nodes.max(2) + 1);
    let mut graph = TaskGraph::new();
    let mut ids: Vec<NodeId> = Vec::new();
    let mut programs: Vec<Program> = Vec::new();
    for i in 0..n {
        let prog = node_program(rng.gen_range(0usize..6), machine);
        let outputs = prog.output_indices();
        let mut bindings = Vec::with_capacity(prog.args.len());
        for (pi, arg) in prog.args.iter().enumerate() {
            if outputs.contains(&pi) {
                bindings.push(Binding::Zeros);
                continue;
            }
            let candidates: Vec<usize> = (0..i)
                .filter(|&j| {
                    let src = &programs[j].args[0];
                    (src.rows, src.cols, src.dtype) == (arg.rows, arg.cols, arg.dtype)
                })
                .collect();
            if !candidates.is_empty() && rng.gen_range(0u32..100) < 60 {
                let j = candidates[rng.gen_range(0..candidates.len())];
                bindings.push(Binding::output(ids[j], 0));
            } else {
                bindings.push(Binding::External(format!("x{i}_{pi}")));
            }
        }
        let id = graph
            .add_node(&format!("n{i}"), prog.clone(), bindings)
            .expect("generated bindings are compatible by construction");
        if rng.gen_range(0u32..2) == 0 {
            graph.retain(id).unwrap();
        }
        ids.push(id);
        programs.push(prog);
    }
    (graph, ids, programs)
}

/// Random external inputs matching every `External` binding.
fn random_inputs(graph: &TaskGraph, seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
    let mut inputs = HashMap::new();
    for node in graph.nodes() {
        for (pi, binding) in node.bindings.iter().enumerate() {
            if let Binding::External(name) = binding {
                let arg = &node.program.args[pi];
                inputs.insert(
                    name.clone(),
                    Tensor::random(arg.dtype, &[arg.rows, arg.cols], &mut rng, -0.5, 0.5),
                );
            }
        }
    }
    inputs
}

proptest! {
    /// Off vs Auto on random DAGs: bitwise-identical retained outputs,
    /// fused makespan never above the unfused serial sum, and the
    /// fusion annotations account exactly for the replaced nodes.
    #[test]
    fn auto_matches_off_bitwise(seed in 0u64..1_000_000) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 5, &machine);
        let inputs = random_inputs(&graph, seed);

        let mut off = Session::new(machine.clone());
        let off_run = off.launch_functional(&graph, &inputs).unwrap();
        let off_timing = off.launch_timing(&graph).unwrap();

        let mut auto = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
        let auto_run = auto.launch_functional(&graph, &inputs).unwrap();

        // Every output tensor the unfused run kept must exist and match
        // bitwise under fusion.
        let mut compared = 0usize;
        for (i, prog) in programs.iter().enumerate() {
            for pi in prog.output_indices() {
                if let Some(want) = off_run.tensor(ids[i], pi) {
                    let got = auto_run.tensor(ids[i], pi).unwrap_or_else(|| {
                        panic!("node {i} param {pi} vanished under fusion (seed {seed})")
                    });
                    prop_assert_eq!(
                        got.data(),
                        want.data(),
                        "node {} param {} diverged under fusion (seed {})",
                        i, pi, seed
                    );
                    compared += 1;
                }
            }
        }
        prop_assert!(compared > 0, "every graph retains at least its sinks");

        // Beyond outputs: wherever both runs expose a parameter tensor
        // (operands of retained nodes included), the bits must match.
        for (i, prog) in programs.iter().enumerate() {
            for pi in 0..prog.args.len() {
                if let (Some(want), Some(got)) =
                    (off_run.tensor(ids[i], pi), auto_run.tensor(ids[i], pi))
                {
                    prop_assert_eq!(
                        got.data(),
                        want.data(),
                        "node {} param {} operand diverged under fusion (seed {})",
                        i, pi, seed
                    );
                }
            }
        }

        // Makespan: the fused serial schedule never loses to unfused.
        let auto_timing = auto.launch_timing(&graph).unwrap();
        let eps = 1e-9 * off_timing.serial_sum().max(1.0);
        prop_assert!(
            auto_timing.makespan <= off_timing.serial_sum() + eps,
            "fused makespan {} > unfused serial sum {} (seed {seed})",
            auto_timing.makespan, off_timing.serial_sum()
        );

        // Fused launches annotate exactly the nodes they replaced, and
        // launch count shrinks by the number of replaced-away nodes.
        let replaced: usize = auto_timing.nodes.iter().map(|n| n.replaced.len()).sum();
        let fused_launches = auto_timing.nodes.iter().filter(|n| !n.replaced.is_empty()).count();
        prop_assert_eq!(auto_timing.nodes.len(), graph.len() - replaced + fused_launches);
        for node in &auto_timing.nodes {
            prop_assert!(
                node.replaced.is_empty() || node.replaced.len() == 2,
                "a rewrite replaced {} nodes", node.replaced.len()
            );
        }

        // Under the concurrent policy the fused graph still satisfies
        // the scheduling invariants.
        auto.set_policy(SchedulePolicy::Concurrent { streams: 3 });
        let conc = auto.launch_timing(&graph).unwrap();
        prop_assert!(conc.critical_path <= conc.makespan + eps);
        prop_assert!(conc.makespan <= auto_timing.makespan + eps);
        let conc_run = auto.launch_functional(&graph, &inputs).unwrap();
        for (i, prog) in programs.iter().enumerate() {
            for pi in prog.output_indices() {
                if let Some(want) = off_run.tensor(ids[i], pi) {
                    prop_assert_eq!(
                        conc_run.tensor(ids[i], pi).unwrap().data(),
                        want.data(),
                        "concurrent fused run diverged (seed {})", seed
                    );
                }
            }
        }
    }
}

/// The rules must actually fire across the generated corpus — run after
/// the property (cargo runs tests in one process, order-independent by
/// generating a dedicated corpus here).
#[test]
fn both_rules_fire_on_the_corpus() {
    let machine = MachineConfig::test_gpu();
    let mut chain = 0usize;
    let mut gr = 0usize;
    for seed in 0..200u64 {
        let (graph, _, _) = random_graph(seed, 5, &machine);
        let mut auto = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
        let report = auto.launch_timing(&graph).unwrap();
        for node in &report.nodes {
            if !node.replaced.is_empty() {
                match graph_rule_of(&graph, &node.replaced) {
                    Rule::Chain => chain += 1,
                    Rule::Gr => gr += 1,
                }
            }
        }
    }
    assert!(chain > 0, "no GEMM->GEMM chain fused in 200 random graphs");
    assert!(gr > 0, "no GEMM+reduction pair fused in 200 random graphs");
}

enum Rule {
    Chain,
    Gr,
}

/// Which rule a fused launch came from, judged by the replaced nodes'
/// programs in the original graph.
fn graph_rule_of(graph: &TaskGraph, replaced: &[String]) -> Rule {
    let any_reduce = replaced.iter().any(|name| {
        graph
            .nodes()
            .iter()
            .any(|n| &n.name == name && n.program.entry == "reduce")
    });
    if any_reduce {
        Rule::Gr
    } else {
        Rule::Chain
    }
}

// ---------------------------------------------------------------------------
// Degenerate graphs both policies must handle identically.
// ---------------------------------------------------------------------------

fn sessions() -> [(&'static str, Session); 2] {
    let machine = MachineConfig::test_gpu();
    [
        ("off", Session::new(machine.clone())),
        (
            "auto",
            Session::new(machine).with_fusion_policy(FusionPolicy::Auto),
        ),
    ]
}

#[test]
fn empty_graph_is_a_no_op_under_both_policies() {
    let graph = TaskGraph::new();
    for (label, mut session) in sessions() {
        let run = session.launch_functional(&graph, &HashMap::new()).unwrap();
        assert_eq!(run.report.nodes.len(), 0, "{label}");
        assert_eq!(run.report.makespan, 0.0, "{label}");
        let timing = session.launch_timing(&graph).unwrap();
        assert_eq!(timing.makespan, 0.0, "{label}");
        assert_eq!(timing.critical_path, 0.0, "{label}");
        session.set_policy(SchedulePolicy::Concurrent { streams: 4 });
        let conc = session.launch_timing(&graph).unwrap();
        assert_eq!(conc.makespan, 0.0, "{label}");
    }
}

#[test]
fn single_node_is_identical_under_both_policies() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let id = graph
        .add_node(
            "only",
            program,
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let inputs = random_inputs(&graph, 99);
    let mut runs = Vec::new();
    for (_, mut session) in sessions() {
        let run = session.launch_functional(&graph, &inputs).unwrap();
        assert!(run.report.nodes.iter().all(|n| n.replaced.is_empty()));
        runs.push(run);
    }
    let want = runs[0].tensor(id, 0).unwrap();
    assert_eq!(runs[1].tensor(id, 0).unwrap().data(), want.data());
}

#[test]
fn chain_pair_fuses_to_a_single_launch() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let up = graph
        .add_node(
            "up",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::external("W1"),
            ],
        )
        .unwrap();
    let down = graph
        .add_node(
            "down",
            program,
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::external("W2"),
            ],
        )
        .unwrap();
    let inputs = random_inputs(&graph, 7);

    let mut off = Session::new(machine.clone());
    let off_run = off.launch_functional(&graph, &inputs).unwrap();
    let off_timing = off.launch_timing(&graph).unwrap();

    let mut auto = Session::new(machine).with_fusion_policy(FusionPolicy::Auto);
    let auto_run = auto.launch_functional(&graph, &inputs).unwrap();
    let auto_timing = auto.launch_timing(&graph).unwrap();

    // One launch, annotated with both original nodes, faster than the
    // two-launch chain, bitwise-identical output.
    assert_eq!(auto_timing.nodes.len(), 1);
    assert_eq!(auto_timing.nodes[0].replaced, vec!["up", "down"]);
    assert!(auto_timing.makespan < off_timing.makespan);
    assert_eq!(
        auto_run.tensor(down, 0).unwrap().data(),
        off_run.tensor(down, 0).unwrap().data()
    );
    // The dead intermediate is gone under fusion.
    assert!(auto_run.tensor(up, 0).is_none());
    assert!(off_run.tensor(up, 0).is_none(), "consumed in both runs");
    // The consumer is a kept sink, so its surviving operands come back
    // under fusion too (the W2 operand lives on as the fused node's B2).
    assert_eq!(
        auto_run.tensor(down, 2).unwrap().data(),
        off_run.tensor(down, 2).unwrap().data(),
        "a retained node's operand parameters survive fusion"
    );

    // A second launch serves the fused kernel from the cache.
    let before = auto.cache_stats();
    auto.launch_functional(&graph, &inputs).unwrap();
    let after = auto.cache_stats();
    assert_eq!(before.misses, after.misses, "fused fingerprints are stable");
}

#[test]
fn fusion_composes_with_autotuning() {
    use cypress_runtime::MappingPolicy;
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let up = graph
        .add_node(
            "up",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::external("W1"),
            ],
        )
        .unwrap();
    let down = graph
        .add_node(
            "down",
            program,
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::external("W2"),
            ],
        )
        .unwrap();
    let inputs = random_inputs(&graph, 11);

    let mut off = Session::new(machine.clone());
    let want = off.launch_functional(&graph, &inputs).unwrap();

    let mut tuned = Session::new(machine)
        .with_fusion_policy(FusionPolicy::Auto)
        .with_mapping_policy(MappingPolicy::Autotune);
    let got = tuned.launch_functional(&graph, &inputs).unwrap();
    assert_eq!(
        got.tensor(down, 0).unwrap().data(),
        want.tensor(down, 0).unwrap().data(),
        "fused + autotuned still matches the unfused default bitwise"
    );
    let report = tuned.launch_timing(&graph).unwrap();
    assert_eq!(report.nodes.len(), 1, "the fused node autotunes as one");
    assert!(report.nodes[0].tuned_speedup >= 1.0);
}
