//! The mapping-space / autotuner contract.
//!
//! 1. **Space soundness (property)**: for seeded random shapes over all
//!    five paper kernels, *every* candidate the kernel's `MappingSpace`
//!    emits compiles, and its functional output is bitwise identical to
//!    the default mapping's — autotuning can never change results.
//! 2. **Determinism**: two fresh sessions autotuning the same program
//!    pick the same winner with the same cycle counts.
//! 3. **Persistence**: tuning tables round-trip through their text
//!    serialization, and an imported table serves autotune calls without
//!    re-timing.
//! 4. **Transparency**: `MappingPolicy::Autotune` graph launches return
//!    tensors bit-identical to `MappingPolicy::Default`, never report a
//!    per-node `tuned_speedup` below 1.0, and never lose to the default
//!    on the serial makespan.

use cypress_core::kernels::space::{MappingSpace, Shape};
use cypress_core::kernels::{attention, batched, dual_gemm, gemm, gemm_reduction};
use cypress_runtime::{Binding, MappingPolicy, Program, RuntimeError, Session, TuningTable};
use cypress_sim::MachineConfig;
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::sync::Arc;

/// The five paper kernels' spaces (attention once per algorithm).
fn paper_spaces() -> Vec<Arc<dyn MappingSpace>> {
    vec![
        Arc::new(gemm::GemmSpace),
        Arc::new(batched::BatchedGemmSpace),
        Arc::new(dual_gemm::DualGemmSpace),
        Arc::new(gemm_reduction::GemmReductionSpace),
        Arc::new(attention::AttentionSpace {
            algorithm: attention::Algorithm::Fa2,
        }),
        Arc::new(attention::AttentionSpace {
            algorithm: attention::Algorithm::Fa3,
        }),
    ]
}

/// A random valid shape for `space` (dims are multiples of the test
/// machine's tile sizes, so the default mapping always applies).
fn random_shape(space: &dyn MappingSpace, rng: &mut StdRng) -> Shape {
    let mnk = |rng: &mut StdRng| 64 * rng.gen_range(1usize..4);
    match space.entry() {
        "bgemm" => Shape::of(&[rng.gen_range(1usize..3), mnk(rng), mnk(rng), mnk(rng)]),
        // Test-machine attention: Br=128 row bands, Bc=64 (FA3 eats two
        // per iteration), head_dim 64.
        "fa" => Shape::of(&[rng.gen_range(1usize..3), 128 * rng.gen_range(1usize..3), 64]),
        _ => Shape::of(&[mnk(rng), mnk(rng), mnk(rng)]),
    }
}

/// Random inputs for every entry parameter of `program`.
fn random_params(program: &Program, rng: &mut StdRng) -> Vec<Tensor> {
    program
        .args
        .iter()
        .map(|a| Tensor::random(DType::F16, &[a.rows, a.cols], rng, -0.5, 0.5))
        .collect()
}

#[test]
fn every_candidate_compiles_and_matches_the_default_bitwise() {
    let machine = MachineConfig::test_gpu();
    let mut rng = StdRng::seed_from_u64(0x5AC3);
    for space in paper_spaces() {
        for case in 0..3 {
            let shape = random_shape(space.as_ref(), &mut rng);
            let program = Program::from_space(Arc::clone(&space), shape.clone(), &machine)
                .unwrap_or_else(|e| panic!("{} {shape}: default build failed: {e}", space.entry()));
            let mut session = Session::new(machine.clone());
            let inputs = random_params(&program, &mut rng);
            let want = session
                .run_functional(&program, inputs.clone())
                .unwrap_or_else(|e| panic!("{} {shape}: default run failed: {e}", space.entry()));

            let candidates = space.candidates(&machine, &shape);
            assert!(
                candidates.contains(&space.default_for(&machine)),
                "{} {shape}: candidate list must include the default",
                space.entry()
            );
            for cfg in &candidates {
                let parts = space.build(&shape, cfg).unwrap_or_else(|e| {
                    panic!(
                        "{} {shape} {}: emitted candidate failed to build: {e}",
                        space.entry(),
                        cfg.label()
                    )
                });
                let candidate = Program::from_parts(parts, space.entry());
                let got = session
                    .run_functional(&candidate, inputs.clone())
                    .unwrap_or_else(|e| {
                        panic!(
                            "{} {shape} {}: emitted candidate failed to compile/run: {e}",
                            space.entry(),
                            cfg.label()
                        )
                    });
                for (pi, (g, w)) in got.iter().zip(want.iter()).enumerate() {
                    assert_eq!(
                        g.data(),
                        w.data(),
                        "{} {shape} case {case} {}: param {pi} diverged from the default mapping",
                        space.entry(),
                        cfg.label()
                    );
                }
            }
        }
    }
}

#[test]
fn autotuning_is_deterministic_across_sessions() {
    let machine = MachineConfig::test_gpu();
    for space in paper_spaces() {
        let shape = match space.entry() {
            "bgemm" => Shape::of(&[2, 128, 128, 64]),
            "fa" => Shape::of(&[1, 256, 64]),
            _ => Shape::of(&[128, 128, 64]),
        };
        let program = Program::from_space(Arc::clone(&space), shape, &machine).unwrap();
        let a = Session::new(machine.clone()).autotune(&program).unwrap();
        let b = Session::new(machine.clone()).autotune(&program).unwrap();
        assert_eq!(a, b, "{}: sessions disagree on the winner", space.entry());
        assert!(
            a.tuned_cycles <= a.default_cycles,
            "{}: tuned {} cycles lost to the default {}",
            space.entry(),
            a.tuned_cycles,
            a.default_cycles
        );
        assert!(a.speedup() >= 1.0);
        assert!(a.candidates >= 1);
    }
}

#[test]
fn autotune_results_are_cached_in_the_table() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[128, 128, 128]),
        &machine,
    )
    .unwrap();
    let mut session = Session::new(machine);
    let first = session.autotune(&program).unwrap();
    let misses = session.cache_stats().misses;
    assert_eq!(
        misses as usize, first.candidates,
        "one compile per candidate"
    );
    // Second call is served from the table: no new compiles, same answer.
    let second = session.autotune(&program).unwrap();
    assert_eq!(first, second);
    assert_eq!(session.cache_stats().misses, misses);
    assert_eq!(session.tuning_table().len(), 1);
}

/// The parallel sweep is transparent: for every paper kernel, a session
/// tuning on the worker pool picks the identical winner with identical
/// cycle counts *and* identical kernel-cache counters as the serial
/// sweep — the workers only change wall time.
#[test]
fn parallel_sweep_matches_serial_sweep_exactly() {
    let machine = MachineConfig::test_gpu();
    let mut rng = StdRng::seed_from_u64(31);
    for space in paper_spaces() {
        let shape = random_shape(space.as_ref(), &mut rng);
        let Ok(program) = Program::from_space(Arc::clone(&space), shape.clone(), &machine) else {
            continue;
        };
        let mut serial = Session::new(machine.clone()).with_parallelism(1);
        let want = serial.autotune(&program).unwrap();
        for parallelism in [2, 8] {
            let mut parallel = Session::new(machine.clone()).with_parallelism(parallelism);
            let got = parallel.autotune(&program).unwrap();
            assert_eq!(
                want,
                got,
                "{} {shape} at parallelism {parallelism}",
                space.entry()
            );
            assert_eq!(
                serial.cache_stats(),
                parallel.cache_stats(),
                "cache counters must match the serial sweep ({})",
                space.entry()
            );
        }
    }
}

/// A bounded kernel cache behaves identically under the parallel sweep:
/// the lookup replay preserves the serial hit/miss/eviction sequence.
#[test]
fn parallel_sweep_preserves_bounded_cache_semantics() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[128, 128, 128]),
        &machine,
    )
    .unwrap();
    let mut serial = Session::new(machine.clone())
        .with_parallelism(1)
        .with_cache_capacity(2);
    let want = serial.autotune(&program).unwrap();
    let mut parallel = Session::new(machine)
        .with_parallelism(4)
        .with_cache_capacity(2);
    let got = parallel.autotune(&program).unwrap();
    assert_eq!(want, got);
    assert_eq!(serial.cache_stats(), parallel.cache_stats());
}

#[test]
fn tuning_tables_persist_across_sessions() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_space(
        Arc::new(dual_gemm::DualGemmSpace),
        Shape::of(&[128, 128, 64]),
        &machine,
    )
    .unwrap();
    let mut tuned_session = Session::new(machine.clone());
    let tuned = tuned_session.autotune(&program).unwrap();

    // Round-trip the table through its canonical text.
    let text = tuned_session.tuning_table().to_text();
    let restored = TuningTable::from_text(&text).unwrap();
    assert_eq!(&restored, tuned_session.tuning_table());

    // And through a file.
    let path = std::env::temp_dir().join(format!("cypress-tuning-{}.txt", std::process::id()));
    tuned_session.tuning_table().save(&path).unwrap();
    let loaded = TuningTable::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(&loaded, tuned_session.tuning_table());

    // A fresh session with the imported table answers without timing a
    // single candidate (no compiles at all).
    let mut fresh = Session::new(machine);
    fresh.import_tuning(loaded);
    let answer = fresh.autotune(&program).unwrap();
    assert_eq!(answer, tuned);
    assert_eq!(fresh.cache_stats().misses, 0, "served from the table");
}

#[test]
fn autotuned_graphs_match_default_graphs_bitwise() {
    let machine = MachineConfig::test_gpu();
    let d = 128usize;
    let gemm_p =
        Program::from_space(Arc::new(gemm::GemmSpace), Shape::of(&[d, d, d]), &machine).unwrap();
    let gr_p = Program::from_space(
        Arc::new(gemm_reduction::GemmReductionSpace),
        Shape::of(&[d, d, d]),
        &machine,
    )
    .unwrap();

    // x = A @ B; y/gr = (x @ B, rowsum(x)).
    let build_graph = || {
        let mut graph = cypress_runtime::TaskGraph::new();
        let first = graph
            .add_node(
                "first",
                gemm_p.clone(),
                vec![
                    Binding::Zeros,
                    Binding::external("A"),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        graph
            .add_node(
                "second",
                gr_p.clone(),
                vec![
                    Binding::Zeros,
                    Binding::Zeros,
                    Binding::output(first, 0),
                    Binding::external("B"),
                ],
            )
            .unwrap();
        graph
    };
    let graph = build_graph();
    let mut rng = StdRng::seed_from_u64(77);
    let inputs = HashMap::from([
        (
            "A".to_string(),
            Tensor::random(DType::F16, &[d, d], &mut rng, -0.5, 0.5),
        ),
        (
            "B".to_string(),
            Tensor::random(DType::F16, &[d, d], &mut rng, -0.5, 0.5),
        ),
    ]);

    let mut default_session = Session::new(machine.clone());
    let default_run = default_session.launch_functional(&graph, &inputs).unwrap();
    let mut tuned_session =
        Session::new(machine.clone()).with_mapping_policy(MappingPolicy::Autotune);
    let tuned_run = tuned_session.launch_functional(&graph, &inputs).unwrap();

    for node in ["first", "second"] {
        for pi in 0..2 {
            match (
                default_run.tensor_of(node, pi),
                tuned_run.tensor_of(node, pi),
            ) {
                (Some(a), Some(b)) => assert_eq!(
                    a.data(),
                    b.data(),
                    "{node} param {pi}: autotuned tensors diverged"
                ),
                (None, None) => {}
                _ => panic!("{node} param {pi}: retention differs across policies"),
            }
        }
    }

    // The tuned timeline annotates every node and never loses serially.
    let default_report = default_session.launch_timing(&graph).unwrap();
    let tuned_report = tuned_session.launch_timing(&graph).unwrap();
    for n in &default_report.nodes {
        assert_eq!(n.mapping, "default");
        assert_eq!(n.tuned_speedup, 1.0);
    }
    for n in &tuned_report.nodes {
        assert!(!n.mapping.is_empty());
        assert!(
            n.tuned_speedup >= 1.0,
            "{}: tuned mapping lost to the default",
            n.node
        );
    }
    assert!(
        tuned_report.makespan <= default_report.makespan,
        "autotuned serial makespan {} lost to default {}",
        tuned_report.makespan,
        default_report.makespan
    );
}

#[test]
fn autotune_without_a_space_is_a_typed_error() {
    let machine = MachineConfig::test_gpu();
    let plain = Program::from_parts(gemm::build(64, 64, 64, &machine).unwrap(), "gemm");
    let mut session = Session::new(machine);
    let err = session.autotune(&plain);
    assert!(
        matches!(err, Err(RuntimeError::NoMappingSpace { ref entry }) if entry == "gemm"),
        "{err:?}"
    );
    // But an Autotune-policy launch of an unbound program just runs the
    // default mapping.
    let report = session
        .with_mapping_policy(MappingPolicy::Autotune)
        .run_timing(&plain)
        .unwrap();
    assert!(report.cycles > 0.0);
}

#[test]
fn bounded_cache_survives_autotuning_sweeps() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[128, 128, 128]),
        &machine,
    )
    .unwrap();
    let mut session = Session::new(machine).with_cache_capacity(2);
    let tuned = session.autotune(&program).unwrap();
    assert!(tuned.candidates > 2, "sweep exceeds the cache bound");
    let stats = session.cache_stats();
    assert!(stats.evictions > 0, "the bound must have evicted");
    assert!(stats.entries <= 2);
    // The tuned program still launches fine (recompiles are transparent).
    session.set_mapping_policy(MappingPolicy::Autotune);
    let report = session.run_timing(&program).unwrap();
    assert!((report.cycles - tuned.tuned_cycles).abs() < 1e-9);
}

#[test]
fn cross_machine_programs_fall_back_to_their_own_mapping() {
    // Built for the test GPU (64-row tiles), launched on an H100 session
    // whose default pins 128-row tiles: no candidate in the space is
    // valid at 64^3, so Autotune launches must fall back to the
    // program's own mapping instead of erroring.
    let test_gpu = MachineConfig::test_gpu();
    let h100 = MachineConfig::h100_sxm5();
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[64, 64, 64]),
        &test_gpu,
    )
    .unwrap();
    assert!(
        gemm::GemmSpace
            .candidates(&h100, &Shape::of(&[64, 64, 64]))
            .is_empty(),
        "precondition: the H100 space has no valid point at 64^3"
    );

    // Direct autotune surfaces a typed error naming the program...
    let mut session = Session::new(h100.clone());
    assert!(
        matches!(
            session.autotune(&program),
            Err(RuntimeError::Untunable { ref entry, .. }) if entry == "gemm"
        ),
        "autotune of an untunable program is a typed error"
    );
    // ...but policy-driven launches transparently run the default.
    let default_report = session.run_timing(&program).unwrap();
    session.set_mapping_policy(MappingPolicy::Autotune);
    let tuned_report = session.run_timing(&program).unwrap();
    assert_eq!(default_report.cycles, tuned_report.cycles);
    let mut graph = cypress_runtime::TaskGraph::new();
    graph
        .add_node(
            "g",
            program,
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let report = session.launch_timing(&graph).unwrap();
    assert_eq!(report.nodes[0].mapping, "default");
    assert_eq!(report.nodes[0].tuned_speedup, 1.0);
}

#[test]
fn warm_autotuned_launches_skip_the_compiler_entirely() {
    let machine = MachineConfig::test_gpu();
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[128, 128, 128]),
        &machine,
    )
    .unwrap();
    let mut session = Session::new(machine).with_mapping_policy(MappingPolicy::Autotune);
    let first = session.run_timing(&program).unwrap();
    let warm_stats = session.cache_stats();
    // Memoized tuned launch: no cache traffic at all on later launches.
    let second = session.run_timing(&program).unwrap();
    let third = session.run_timing(&program).unwrap();
    assert_eq!(session.cache_stats(), warm_stats);
    assert_eq!(first.cycles, second.cycles);
    assert_eq!(first.cycles, third.cycles);
    // `clear` drops the memo; the relaunch recompiles through the cache.
    session.clear();
    session.run_timing(&program).unwrap();
    assert!(session.cache_stats().misses > warm_stats.misses);
}

#[test]
fn import_tuning_invalidates_memoized_launches() {
    let machine = MachineConfig::test_gpu();
    let shape = Shape::of(&[128, 128, 128]);
    let program = Program::from_space(Arc::new(gemm::GemmSpace), shape.clone(), &machine).unwrap();
    let mut session = Session::new(machine.clone()).with_mapping_policy(MappingPolicy::Autotune);

    // Warm the memo with the session's own winner.
    let mut graph = cypress_runtime::TaskGraph::new();
    graph
        .add_node(
            "g",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let before = session.launch_timing(&graph).unwrap();

    // Import a table that pins the *default* config as the winner for
    // the same key; later launches must honor it (and, since the winner
    // is the hand-tuned default, read as "default" in the report).
    let (key, own) = {
        let (k, t) = session.tuning_table().iter().next().unwrap();
        (k.clone(), t.clone())
    };
    let default_cfg = {
        let cypress_core::MappingConfig::Gemm(c) = gemm::GemmSpace.default_for(&machine) else {
            unreachable!()
        };
        cypress_core::MappingConfig::Gemm(c)
    };
    assert_ne!(
        own.config, default_cfg,
        "precondition: the session's winner differs from the default"
    );
    let mut table = TuningTable::new();
    table.insert(
        key,
        cypress_runtime::TunedMapping {
            entry: own.entry.clone(),
            config: default_cfg,
            default_cycles: own.default_cycles,
            tuned_cycles: own.default_cycles,
            predicted_cycles: 0.0,
            candidates: own.candidates,
            model_version: 0,
        },
    );
    session.import_tuning(table);
    let after = session.launch_timing(&graph).unwrap();
    assert_ne!(
        before.nodes[0].mapping, after.nodes[0].mapping,
        "imported winner must replace the memoized launch"
    );
    assert_eq!(
        after.nodes[0].mapping, "default",
        "a winner equal to the hand-tuned default reads as default"
    );
    assert_eq!(after.nodes[0].tuned_speedup, 1.0);
}

#[test]
fn untunable_fallback_is_memoized_across_launches() {
    // Cross-machine program: the H100 space has no valid point at 64^3,
    // so launches fall back — and after the first launch the fallback
    // costs exactly one cache hit, like the Default policy.
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[64, 64, 64]),
        &MachineConfig::test_gpu(),
    )
    .unwrap();
    let mut session =
        Session::new(MachineConfig::h100_sxm5()).with_mapping_policy(MappingPolicy::Autotune);
    session.run_timing(&program).unwrap();
    let warm = session.cache_stats();
    session.run_timing(&program).unwrap();
    let next = session.cache_stats();
    assert_eq!(next.misses, warm.misses, "fallback never recompiles");
    assert_eq!(next.hits, warm.hits + 1, "one cache hit per warm launch");
}

#[test]
fn corrupted_table_entries_are_revalidated_and_retuned() {
    use cypress_core::kernels::gemm::GemmConfig;
    let machine = MachineConfig::test_gpu();
    let shape = Shape::of(&[128, 128, 128]);
    let program = Program::from_space(Arc::new(gemm::GemmSpace), shape, &machine).unwrap();

    // Tune once to learn the key, then forge a table whose winner has a
    // non-dividing V tile (a hand-edited/corrupted but parseable entry).
    let mut donor = Session::new(machine.clone());
    let honest = donor.autotune(&program).unwrap();
    let key = donor.tuning_table().iter().next().unwrap().0.clone();
    let mut forged = TuningTable::new();
    forged.insert(
        key,
        cypress_runtime::TunedMapping {
            entry: "gemm".into(),
            config: cypress_core::MappingConfig::Gemm(GemmConfig {
                v: 100, // does not divide N=128
                ..GemmConfig::test()
            }),
            default_cycles: 1.0,
            tuned_cycles: 1.0,
            predicted_cycles: 0.0,
            candidates: 1,
            model_version: 0,
        },
    );

    let mut session = Session::new(machine).with_mapping_policy(MappingPolicy::Autotune);
    session.import_tuning(forged);
    // The invalid stored winner is rejected and the space re-tuned
    // instead of building a non-dividing mapping blind.
    let retuned = session.autotune(&program).unwrap();
    assert_eq!(retuned, honest, "re-tune must reproduce the honest winner");
    let report = session.run_timing(&program).unwrap();
    assert!((report.cycles - honest.tuned_cycles).abs() < 1e-9);
}

/// One guided-vs-exhaustive comparison: returns (exhaustive result,
/// exhaustive cache stats) from a fresh serial session.
fn tune_exhaustive(
    machine: &MachineConfig,
    program: &Program,
) -> (cypress_runtime::TunedMapping, cypress_runtime::CacheStats) {
    let mut session = Session::new(machine.clone());
    let tuned = session.autotune(program).unwrap();
    (tuned, session.cache_stats())
}

proptest::proptest! {
    /// The guided-tuning contract, over all five paper kernels at
    /// seeded random shapes:
    ///
    /// 1. a guided sweep with `top_k >= candidates.len()` is
    ///    bit-identical to the exhaustive sweep — same `TunedMapping`
    ///    (prediction fields included) and same kernel-cache traffic;
    /// 2. a half-budget guided sweep times at most half the candidates
    ///    (plus nothing else: fresh sessions have no transfer seed) and
    ///    its winner's measured cycles are within 5% of the exhaustive
    ///    winner's;
    /// 3. cost ranking is deterministic: two sessions running the same
    ///    guided sweep agree on the result and on every tuner counter.
    #[test]
    fn guided_sweeps_track_exhaustive_sweeps(seed in 0u64..1_000_000) {
        use cypress_runtime::TunerBudget;
        let machine = MachineConfig::test_gpu();
        let mut rng = StdRng::seed_from_u64(seed);
        let spaces = paper_spaces();
        let space = &spaces[(seed % spaces.len() as u64) as usize];
        let shape = random_shape(space.as_ref(), &mut rng);
        let Ok(program) = Program::from_space(Arc::clone(space), shape.clone(), &machine) else {
            return; // default invalid at this shape: nothing to tune against
        };
        let total = space.candidates(&machine, &shape).len();
        if total == 0 {
            return;
        }
        let (exhaustive, exhaustive_cache) = tune_exhaustive(&machine, &program);

        // (1) full-budget guided == exhaustive, bit for bit.
        let mut full = Session::new(machine.clone());
        let got = full.autotune_with(&program, TunerBudget::TopK(total)).unwrap();
        proptest::prop_assert_eq!(&got, &exhaustive, "{} {}: full-budget guided diverged", space.entry(), &shape);
        proptest::prop_assert_eq!(
            full.cache_stats(),
            exhaustive_cache,
            "{} {}: full-budget guided cache traffic diverged",
            space.entry(),
            &shape
        );
        let stats = full.tuning_table().stats();
        proptest::prop_assert_eq!(stats.ranked as usize, total);
        proptest::prop_assert_eq!(stats.pruned, 0, "a covering budget must prune nothing");

        // (2) half-budget guided: halved timing cost, near-best winner.
        let half = total.div_ceil(2);
        let mut guided = Session::new(machine.clone());
        let winner = guided.autotune_with(&program, TunerBudget::TopK(half)).unwrap();
        let stats = guided.tuning_table().stats();
        proptest::prop_assert!(
            stats.candidates_timed as usize <= half,
            "{} {}: guided timed {} of {} candidates (budget {})",
            space.entry(),
            &shape,
            stats.candidates_timed,
            total,
            half
        );
        proptest::prop_assert_eq!(stats.pruned as usize + stats.candidates_timed as usize, total);
        proptest::prop_assert!(
            winner.tuned_cycles <= exhaustive.tuned_cycles * 1.05,
            "{} {}: guided winner {} cycles vs exhaustive {} (ratio {:.4})",
            space.entry(),
            &shape,
            winner.tuned_cycles,
            exhaustive.tuned_cycles,
            winner.tuned_cycles / exhaustive.tuned_cycles
        );

        // (3) ranking determinism across sessions.
        let mut again = Session::new(machine.clone());
        let rewinner = again.autotune_with(&program, TunerBudget::TopK(half)).unwrap();
        proptest::prop_assert_eq!(&rewinner, &winner, "{} {}: guided sweep is nondeterministic", space.entry(), &shape);
        proptest::prop_assert_eq!(again.tuning_table().stats(), guided.tuning_table().stats());
    }
}

#[test]
fn transfer_tuning_seeds_neighboring_shapes() {
    use cypress_runtime::TunerBudget;
    let machine = MachineConfig::test_gpu();
    let tuned_at = Shape::of(&[128, 128, 128]);
    let untuned = Shape::of(&[192, 192, 192]);
    let donor = Program::from_space(Arc::new(gemm::GemmSpace), tuned_at, &machine).unwrap();
    let target = Program::from_space(Arc::new(gemm::GemmSpace), untuned.clone(), &machine).unwrap();

    // Tune the donor shape exhaustively, then ask for the neighbor under
    // a zero budget: the sweep must time exactly one candidate — the
    // transferred winner — and count the transfer.
    let mut session = Session::new(machine.clone());
    let donor_win = session.autotune(&donor).unwrap();
    let timed_before = session.tuning_table().stats().candidates_timed;
    let transferred = session
        .autotune_with(&target, TunerBudget::TopK(0))
        .unwrap();
    let stats = session.tuning_table().stats();
    assert_eq!(
        stats.candidates_timed - timed_before,
        1,
        "zero-budget transfer must time exactly the seeded winner"
    );
    assert_eq!(stats.transferred, 1);
    assert_eq!(
        transferred.config, donor_win.config,
        "the neighbor's winner is the only candidate in a zero-budget sweep"
    );

    // Without a neighbor, a zero budget still times one candidate (the
    // best-predicted), and no transfer is counted.
    let mut cold = Session::new(machine);
    let lone = cold.autotune_with(&target, TunerBudget::TopK(0)).unwrap();
    let cold_stats = cold.tuning_table().stats();
    assert_eq!(cold_stats.candidates_timed, 1);
    assert_eq!(cold_stats.transferred, 0);
    assert!(
        target
            .space
            .as_ref()
            .map(|b| b
                .space
                .candidates(&cold.machine().clone(), &untuned)
                .contains(&lone.config))
            .unwrap_or(false),
        "the zero-budget winner must be an enumerated candidate"
    );
}

#[test]
fn guided_policy_tensors_match_default_and_autotune_bitwise() {
    let machine = MachineConfig::test_gpu();
    let mut rng = StdRng::seed_from_u64(0x6D1D);
    let program = Program::from_space(
        Arc::new(gemm::GemmSpace),
        Shape::of(&[128, 128, 128]),
        &machine,
    )
    .unwrap();
    let mut graph = cypress_runtime::TaskGraph::new();
    graph
        .add_node(
            "g",
            program,
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B"),
            ],
        )
        .unwrap();
    let inputs: HashMap<String, Tensor> = [
        (
            "A".to_string(),
            Tensor::random(DType::F16, &[128, 128], &mut rng, -0.5, 0.5),
        ),
        (
            "B".to_string(),
            Tensor::random(DType::F16, &[128, 128], &mut rng, -0.5, 0.5),
        ),
    ]
    .into();
    let mut results = Vec::new();
    for policy in [
        MappingPolicy::Default,
        MappingPolicy::Autotune,
        MappingPolicy::Guided { top_k: 3 },
    ] {
        let mut session = Session::new(machine.clone()).with_mapping_policy(policy);
        let run = session.launch_functional(&graph, &inputs).unwrap();
        results.push(run);
    }
    let want = results[0].tensor_of("g", 0).unwrap();
    for (i, got) in results.iter().enumerate().skip(1) {
        let g = got.tensor_of("g", 0).unwrap();
        assert_eq!(
            g.data(),
            want.data(),
            "policy #{i} diverged from Default bitwise"
        );
    }
}
