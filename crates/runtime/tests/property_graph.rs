//! Property-based differential tests of the task-graph runtime.
//!
//! Random DAGs over the five paper kernels (GEMM, batched-GEMM,
//! dual-GEMM, GEMM+Reduction, FlashAttention-2) with random
//! fan-out/fan-in and retain flags are checked two ways:
//!
//! 1. **Functional differential**: the graph run must be
//!    *tensor-identical* (bitwise) to an oracle that hand-composes the
//!    same schedule out of single-kernel `Simulator::run_functional`
//!    calls, threading buffers by hand.
//! 2. **Timing invariants**: under every policy and stream count,
//!    `critical_path <= makespan <= serial_sum`; one stream reproduces
//!    the serial policy exactly.

use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::{attention, batched, dual_gemm, gemm, gemm_reduction};
use cypress_runtime::{Binding, NodeId, Program, SchedulePolicy, Session, TaskGraph};
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Uniform problem size: every consumable tensor is `D x D`, so any
/// node's primary output can feed any compatible input slot.
const D: usize = 64;

/// One of the five paper kernels at the uniform size.
fn paper_program(kind: usize, machine: &MachineConfig) -> Program {
    match kind % 5 {
        0 => Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm"),
        1 => Program::from_parts(batched::build(1, D, D, D, machine).unwrap(), "bgemm"),
        2 => Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual"),
        3 => Program::from_parts(gemm_reduction::build(D, D, D, machine).unwrap(), "gr"),
        _ => Program::from_parts(
            attention::build_with(
                attention::Algorithm::Fa2,
                1,
                D,
                D,
                // One 64-row warpgroup so the uniform D x D size tiles.
                attention::AttentionConfig {
                    br: 64,
                    bc: 64,
                    wgs: 1,
                    pipeline: 1,
                },
            )
            .expect("64-row attention is well-formed"),
            "fa",
        ),
    }
}

/// A random DAG over the paper kernels: each non-output parameter either
/// takes a tensor-buffer edge from a random compatible earlier node
/// (fan-out and fan-in arise naturally) or an external input; each node
/// is retained with probability one half.
fn random_graph(
    seed: u64,
    max_nodes: usize,
    machine: &MachineConfig,
) -> (TaskGraph, Vec<NodeId>, Vec<Program>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max_nodes.max(2) + 1);
    let mut graph = TaskGraph::new();
    let mut ids: Vec<NodeId> = Vec::new();
    let mut programs: Vec<Program> = Vec::new();
    for i in 0..n {
        let prog = paper_program(rng.gen_range(0usize..5), machine);
        let outputs = prog.output_indices();
        let mut bindings = Vec::with_capacity(prog.args.len());
        for (pi, arg) in prog.args.iter().enumerate() {
            if outputs.contains(&pi) {
                bindings.push(Binding::Zeros);
                continue;
            }
            // Candidate producers whose primary output fits this slot.
            let candidates: Vec<usize> = (0..i)
                .filter(|&j| {
                    let src = &programs[j].args[0];
                    (src.rows, src.cols, src.dtype) == (arg.rows, arg.cols, arg.dtype)
                })
                .collect();
            if !candidates.is_empty() && rng.gen_range(0u32..100) < 60 {
                let j = candidates[rng.gen_range(0..candidates.len())];
                bindings.push(Binding::output(ids[j], 0));
            } else {
                bindings.push(Binding::External(format!("x{i}_{pi}")));
            }
        }
        let id = graph
            .add_node(&format!("n{i}"), prog.clone(), bindings)
            .expect("generated bindings are compatible by construction");
        if rng.gen_range(0u32..2) == 0 {
            graph.retain(id).unwrap();
        }
        ids.push(id);
        programs.push(prog);
    }
    (graph, ids, programs)
}

/// Random external inputs matching every `External` binding's parameter.
fn random_inputs(graph: &TaskGraph, seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
    let mut inputs = HashMap::new();
    for node in graph.nodes() {
        for (pi, binding) in node.bindings.iter().enumerate() {
            if let Binding::External(name) = binding {
                let arg = &node.program.args[pi];
                inputs.insert(
                    name.clone(),
                    Tensor::random(arg.dtype, &[arg.rows, arg.cols], &mut rng, -0.5, 0.5),
                );
            }
        }
    }
    inputs
}

/// Hand-composed oracle: walk the deterministic schedule and launch each
/// node as its own `Simulator::run_functional` call, threading buffers
/// manually. Returns every node's final parameter tensors.
fn oracle_run(
    graph: &TaskGraph,
    machine: &MachineConfig,
    inputs: &HashMap<String, Tensor>,
) -> Vec<Vec<Tensor>> {
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let mut results: Vec<Option<Vec<Tensor>>> = vec![None; graph.len()];
    for &id in &graph.schedule() {
        let node = &graph.nodes()[id.index()];
        let p = &node.program;
        let compiled = compiler
            .compile(&p.registry, &p.mapping, &p.entry, &p.args)
            .expect("paper kernels compile");
        let params: Vec<Tensor> = node
            .bindings
            .iter()
            .enumerate()
            .map(|(pi, b)| match b {
                Binding::External(name) => inputs[name].clone(),
                Binding::Output { node: src, param } => results[src.index()]
                    .as_ref()
                    .expect("schedule is topological")[*param]
                    .clone(),
                Binding::Zeros => {
                    let arg = &p.args[pi];
                    Tensor::zeros(arg.dtype, &[arg.rows, arg.cols])
                }
            })
            .collect();
        let run = sim
            .run_functional(&compiled.kernel, params)
            .expect("oracle launch succeeds");
        results[id.index()] = Some(run.params);
    }
    results.into_iter().map(|r| r.expect("node ran")).collect()
}

proptest! {
    /// The graph run is tensor-identical to the hand-composed oracle for
    /// every retained or sink node's every parameter.
    #[test]
    fn functional_graph_matches_single_kernel_oracle(seed in 0u64..1_000_000) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 4, &machine);
        let inputs = random_inputs(&graph, seed);
        let mut session = Session::new(machine.clone());
        let run = session.launch_functional(&graph, &inputs).unwrap();
        let oracle = oracle_run(&graph, &machine, &inputs);
        let mut compared = 0usize;
        for (i, &id) in ids.iter().enumerate() {
            for (pi, want) in oracle[i].iter().enumerate().take(programs[i].args.len()) {
                if let Some(t) = run.tensor(id, pi) {
                    prop_assert_eq!(
                        t.data(),
                        want.data(),
                        "node {} param {} diverged from the oracle (seed {})",
                        i, pi, seed
                    );
                    compared += 1;
                }
            }
        }
        prop_assert!(compared > 0, "every graph retains at least its sinks");
    }

    /// Timing invariants for every generated DAG and stream count:
    /// `critical_path <= makespan <= serial_sum`, one stream reproduces
    /// the serial policy bit for bit, and concurrent scheduling never
    /// loses to serial.
    #[test]
    fn concurrent_timing_invariants(seed in 0u64..1_000_000, streams in 1usize..5) {
        let machine = MachineConfig::test_gpu();
        let (graph, _, _) = random_graph(seed, 6, &machine);
        let mut session = Session::new(machine.clone());
        let serial = session.launch_timing(&graph).unwrap();
        prop_assert_eq!(serial.makespan, serial.serial_sum(),
            "serial makespan is the serial sum by definition");

        session.set_policy(SchedulePolicy::Concurrent { streams });
        let conc = session.launch_timing(&graph).unwrap();
        let eps = 1e-9 * serial.makespan.max(1.0);
        prop_assert!(conc.critical_path <= conc.makespan + eps,
            "critical path {} > makespan {} (seed {seed}, streams {streams})",
            conc.critical_path, conc.makespan);
        prop_assert!(conc.makespan <= conc.serial_sum() + eps,
            "makespan {} > serial sum {} (seed {seed}, streams {streams})",
            conc.makespan, conc.serial_sum());
        prop_assert!(conc.makespan <= serial.makespan + eps,
            "concurrent lost to serial (seed {seed}, streams {streams})");
        prop_assert!((conc.serial_sum() - serial.serial_sum()).abs() <= eps,
            "solo node costs must not depend on the policy");
        if streams == 1 {
            prop_assert_eq!(conc.makespan, serial.makespan,
                "one stream reproduces serial numbers exactly");
        }

        // Completions pop in nondecreasing end order (the engine only
        // moves forward), and the makespan is their maximum — the
        // scheduler folds with `max` so neither property can silently
        // break the other.
        let mut last_end = 0.0f64;
        for n in &conc.nodes {
            prop_assert!(n.end >= last_end,
                "completion order regressed in time (seed {seed}, streams {streams})");
            last_end = n.end;
        }
        prop_assert_eq!(conc.makespan, last_end.max(0.0),
            "makespan is the latest completion");

        // Same graph, same policy, scheduled twice: identical reports.
        let again = session.launch_timing(&graph).unwrap();
        prop_assert_eq!(conc.makespan, again.makespan);
        for (a, b) in conc.nodes.iter().zip(again.nodes.iter()) {
            prop_assert_eq!(&a.node, &b.node);
            prop_assert_eq!(a.stream, b.stream);
            prop_assert_eq!(a.start, b.start);
            prop_assert_eq!(a.end, b.end);
        }
    }

    /// Re-binding fresh inputs against a [`CompiledGraph`] handle is
    /// bitwise identical to a fresh `launch_functional` of the same
    /// graph, across schedule policies and host worker counts — the
    /// compile-once/launch-many path never drifts from the
    /// compile-every-time path.
    #[test]
    fn compiled_graph_rebind_matches_fresh_launch(seed in 0u64..1_000_000) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 4, &machine);
        let mut session = Session::new(machine.clone());
        let compiled = session.compile_graph(&graph).unwrap();
        prop_assert_eq!(compiled.launch_count(), graph.len());
        prop_assert!(!compiled.is_fused(), "fusion is off by default");
        for policy in [SchedulePolicy::Serial, SchedulePolicy::Concurrent { streams: 2 }] {
            for parallelism in [1usize, 8] {
                session.set_policy(policy);
                session.set_parallelism(parallelism);
                // Two rounds of fresh inputs per configuration: the
                // handle must be reusable, not single-shot.
                for round in 0..2u64 {
                    let inputs = random_inputs(&graph, seed ^ (round + 1));
                    let rebind = session.launch_compiled(&compiled, &inputs).unwrap();
                    let fresh = session.launch_functional(&graph, &inputs).unwrap();
                    let mut compared = 0usize;
                    for (i, &id) in ids.iter().enumerate() {
                        for pi in 0..programs[i].args.len() {
                            match (rebind.tensor(id, pi), fresh.tensor(id, pi)) {
                                (Some(a), Some(b)) => {
                                    prop_assert_eq!(a.data(), b.data(),
                                        "node {} param {} diverged on re-bind (seed {seed})",
                                        i, pi);
                                    compared += 1;
                                }
                                (None, None) => {}
                                _ => prop_assert!(false,
                                    "re-bind retained a different tensor set (seed {seed})"),
                            }
                        }
                    }
                    prop_assert!(compared > 0, "every graph retains at least its sinks");
                }
            }
        }
    }
}

/// The compiled-graph handle freezes the fusion rewrite and keeps its
/// kernels alive independently of the session cache: re-binding after
/// [`Session::clear`] still launches, and fused results still come back
/// addressed by the original graph's node ids.
#[test]
fn compiled_graph_rebind_survives_fusion_and_cache_clear() {
    use cypress_runtime::FusionPolicy;
    let machine = MachineConfig::test_gpu();
    let program = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let up = graph
        .add_node(
            "up",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::external("W1"),
            ],
        )
        .unwrap();
    let down = graph
        .add_node(
            "down",
            program,
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::external("W2"),
            ],
        )
        .unwrap();

    let mut session = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
    let compiled = session.compile_graph(&graph).unwrap();
    assert!(compiled.is_fused(), "the GEMM chain fuses on this machine");
    assert_eq!(compiled.launch_count(), 1);
    assert_eq!(compiled.graph().len(), 2);

    for round in 0..2u64 {
        let inputs = random_inputs(&graph, 1000 + round);
        if round == 1 {
            // Evicting every cached kernel must not invalidate the
            // handle: it owns its compiled launches.
            session.clear();
        }
        let rebind = session.launch_compiled(&compiled, &inputs).unwrap();
        let fresh = session.launch_functional(&graph, &inputs).unwrap();
        let a = rebind.tensor(down, 0).expect("sink tensor retained");
        let b = fresh.tensor(down, 0).expect("sink tensor retained");
        assert_eq!(a.data(), b.data(), "fused re-bind diverged (round {round})");
    }
}
