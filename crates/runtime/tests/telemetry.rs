//! Integration contract of the telemetry layer
//! (`cypress_runtime::telemetry`):
//!
//! 1. **Zero-cost default**: sessions ship with the disabled
//!    `NoopRecorder`; attaching a `TraceLog` never changes tensors or
//!    reports, it only observes them, and host-time events stay out of
//!    the stream unless explicitly opted in.
//! 2. **Chrome-trace round-trip**: `TraceSink::chrome_json` output
//!    parses back with `TraceSink::parse_chrome_json`, timestamps are
//!    monotone, and every parsed span matches the `GraphReport`
//!    timeline bit-for-bit.
//! 3. **Unified metrics**: one `Session::metrics` snapshot carries
//!    cache, pool, tuner, fusion, and apply-byte counters at once, and
//!    the apply bytes are invariant across schedule policies and
//!    worker counts.

use cypress_core::kernels::space::Shape;
use cypress_core::kernels::{dual_gemm, gemm};
use cypress_runtime::telemetry::TraceLog;
use cypress_runtime::{
    Binding, Event, EventClass, FusionPolicy, NodeId, Program, SchedulePolicy, Session, TaskGraph,
    TraceSink, TunerBudget,
};
use cypress_sim::MachineConfig;
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

const D: usize = 64;

/// Two independent GEMMs feeding a dual-GEMM combiner: wide enough to
/// overlap on two streams, and its drained intermediates exercise the
/// buffer pool.
fn vee_graph(machine: &MachineConfig) -> (TaskGraph, NodeId) {
    let gemm_p = Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm");
    let dual_p = Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual");
    let mut graph = TaskGraph::new();
    let left = graph
        .add_node(
            "left",
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("A0"),
                Binding::external("B0"),
            ],
        )
        .unwrap();
    let right = graph
        .add_node(
            "right",
            gemm_p,
            vec![
                Binding::Zeros,
                Binding::external("A1"),
                Binding::external("B1"),
            ],
        )
        .unwrap();
    let sink = graph
        .add_node(
            "sink",
            dual_p,
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::output(left, 0),
                Binding::output(right, 0),
            ],
        )
        .unwrap();
    (graph, sink)
}

fn vee_inputs(seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = HashMap::new();
    for name in ["A0", "B0", "A1", "B1", "X"] {
        m.insert(
            name.to_string(),
            Tensor::random(DType::F16, &[D, D], &mut rng, -0.5, 0.5),
        );
    }
    m
}

/// A GEMM→GEMM chain the fusion rewriter collapses to one launch.
fn chain_graph(machine: &MachineConfig) -> (TaskGraph, NodeId) {
    let gemm_p = Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let up = graph
        .add_node(
            "up",
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::external("W1"),
            ],
        )
        .unwrap();
    let down = graph
        .add_node(
            "down",
            gemm_p,
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::external("W2"),
            ],
        )
        .unwrap();
    (graph, down)
}

fn chain_inputs(seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = HashMap::new();
    for name in ["X", "W1", "W2"] {
        m.insert(
            name.to_string(),
            Tensor::random(DType::F16, &[D, D], &mut rng, -0.5, 0.5),
        );
    }
    m
}

/// Attaching a recorder observes the launch without changing it: the
/// tensors and report are bit-identical to an unrecorded session, and
/// the stream covers the whole execution path.
#[test]
fn recorders_observe_without_changing_results() {
    let machine = MachineConfig::test_gpu();
    let (graph, sink) = vee_graph(&machine);
    let ins = vee_inputs(7);

    let mut plain = Session::new(machine.clone());
    let want = plain.launch_functional(&graph, &ins).unwrap();

    let log = TraceLog::new();
    let mut traced = Session::new(machine).with_recorder(log.clone());
    let got = traced.launch_functional(&graph, &ins).unwrap();

    assert_eq!(
        want.tensor(sink, 0).unwrap().data(),
        got.tensor(sink, 0).unwrap().data(),
        "recording must not perturb results"
    );
    assert_eq!(
        want.report.makespan.to_bits(),
        got.report.makespan.to_bits()
    );

    let events = log.events();
    assert_eq!(
        events[0],
        Event::GraphSubmitted {
            nodes: 3,
            mode: "functional"
        }
    );
    let count = |pred: fn(&&Event) -> bool| events.iter().filter(pred).count();
    assert_eq!(count(|e| matches!(e, Event::CacheLookup { .. })), 3);
    assert_eq!(count(|e| matches!(e, Event::NodeExecuted { .. })), 3);
    assert_eq!(count(|e| matches!(e, Event::NodeSpan { .. })), 3);
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::PoolAcquire { .. })));
    assert!(
        events.iter().all(|e| e.class() != EventClass::Host),
        "host-time events need the with_host opt-in"
    );
}

/// Wall-clock compile-pass events reach the log only with
/// [`TraceLog::with_host`], and they carry every pipeline pass on a
/// cache miss.
#[test]
fn host_compile_passes_require_the_opt_in() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = vee_graph(&machine);
    let ins = vee_inputs(7);

    let log = TraceLog::new().with_host();
    let mut session = Session::new(machine).with_recorder(log.clone());
    session.launch_functional(&graph, &ins).unwrap();

    let passes: Vec<String> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::CompilePass { pass, .. } => Some(pass.clone()),
            _ => None,
        })
        .collect();
    assert!(
        passes.iter().any(|p| p == "codegen"),
        "a cache miss records each pipeline pass, got {passes:?}"
    );
}

/// The Chrome-trace export round-trips through the bundled parser with
/// every span matching the report timeline bit-for-bit.
#[test]
fn chrome_json_round_trips_against_the_report() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = vee_graph(&machine);
    let mut session = Session::new(machine).with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let report = session.launch_timing(&graph).unwrap();
    assert!(
        report.nodes.iter().any(|n| n.stream > 0),
        "the vee overlaps on two streams"
    );

    let json = TraceSink::chrome_json(&report);
    let trace = TraceSink::parse_chrome_json(&json).unwrap();
    assert_eq!(trace.streams, Some(report.streams));
    assert_eq!(trace.makespan.unwrap().to_bits(), report.makespan.to_bits());
    assert_eq!(trace.spans.len(), report.nodes.len());
    for pair in trace.spans.windows(2) {
        assert!(pair[0].ts <= pair[1].ts, "timestamps must be monotone");
    }
    for span in &trace.spans {
        let node = report
            .nodes
            .iter()
            .find(|n| n.node == span.name)
            .unwrap_or_else(|| panic!("span {} has no report node", span.name));
        assert_eq!(span.cat, "node");
        assert_eq!(span.pid, 0);
        assert_eq!(span.tid, node.stream);
        assert_eq!(span.ts.to_bits(), node.start.to_bits());
        assert_eq!(span.dur.to_bits(), (node.end - node.start).to_bits());
    }
}

/// Hostile span labels — quotes, backslashes, control characters,
/// astral-plane Unicode, JSON-injection attempts — survive the
/// export/parse round-trip byte-for-byte: the escaper writes valid JSON
/// for any Rust string and the parser reads it back exactly.
#[test]
fn chrome_json_round_trips_hostile_labels() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = vee_graph(&machine);
    let mut session = Session::new(machine);
    let mut report = session.launch_timing(&graph).unwrap();

    let hostile = [
        "quote\" backslash\\ slash/ \"closer",
        "newline\n tab\t return\r bell\u{7} nul\u{0}",
        "unicode μ→𝕫🚀 injection\",\"ph\":\"M\",\"x\":\"",
        "</script>{}[]\u{1b}[31m escape\u{1F} del\u{7f}",
    ];
    assert!(
        report.nodes.len() <= hostile.len(),
        "the vee fits the hostile label set"
    );
    for (node, label) in report.nodes.iter_mut().zip(hostile) {
        node.node = label.to_string();
        node.mapping = format!("mapping {label}");
        node.replaced = vec![format!("was {label}")];
    }

    let json = TraceSink::chrome_json(&report);
    let trace = TraceSink::parse_chrome_json(&json).unwrap();
    assert_eq!(trace.spans.len(), report.nodes.len());
    let mut names: Vec<&str> = trace.spans.iter().map(|s| s.name.as_str()).collect();
    let mut want: Vec<&str> = report.nodes.iter().map(|n| n.node.as_str()).collect();
    names.sort_unstable();
    want.sort_unstable();
    assert_eq!(names, want, "hostile labels must round-trip exactly");
}

/// One [`Session::metrics`] snapshot unifies the cache, pool, fusion,
/// and apply-byte counters, and its Display form names each section.
#[test]
fn metrics_snapshot_unifies_the_counters() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = chain_graph(&machine);
    let ins = chain_inputs(5);

    let mut session = Session::new(machine).with_fusion_policy(FusionPolicy::Auto);
    session.launch_functional(&graph, &ins).unwrap();
    session.launch_functional(&graph, &ins).unwrap();

    let m = session.metrics();
    assert!(m.cache.misses >= 1, "{m}");
    assert!(m.cache.hits >= 1, "the second launch is served hot: {m}");
    assert!(m.pool.acquired >= 1, "{m}");
    assert!(m.fusion_applied >= 1, "the GEMM chain fuses: {m}");
    assert!(m.apply_bytes.f16 > 0, "an f16 GEMM moves f16 bytes: {m}");
    assert_eq!(
        m.apply_bytes.total(),
        m.apply_bytes.f16 + m.apply_bytes.bf16 + m.apply_bytes.f32
    );
    let text = m.to_string();
    for section in ["cache", "pool", "tuner", "fusion", "fault", "apply"] {
        assert!(text.contains(section), "{text}");
    }
}

/// Tuner counters and sweep events flow through the session: a fresh
/// sweep records its candidates, a repeat is a table hit flagged
/// `cached`, and the stats agree with the stream.
#[test]
fn tuner_metrics_and_sweep_events_flow_through_the_session() {
    let machine = MachineConfig::test_gpu();
    let program =
        Program::from_space(Arc::new(gemm::GemmSpace), Shape::of(&[D, D, D]), &machine).unwrap();

    let log = TraceLog::new();
    let mut session = Session::new(machine).with_recorder(log.clone());
    let first = session.autotune(&program).unwrap();
    let second = session.autotune(&program).unwrap();
    assert_eq!(first, second);

    let m = session.metrics();
    assert_eq!(m.tuner.lookups, 2, "{m}");
    assert_eq!(m.tuner.hits, 1, "{m}");
    assert_eq!(m.tuner.sweeps, 1, "{m}");
    assert!(m.tuner.candidates_timed >= 1, "{m}");

    let sweeps: Vec<(bool, String)> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::TunerSweep { cached, winner, .. } => Some((*cached, winner.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(sweeps.len(), 2);
    assert!(!sweeps[0].0, "the first sweep timed its candidates");
    assert!(sweeps[1].0, "the second was served from the table");
    assert_eq!(sweeps[0].1, sweeps[1].1, "both name the same winner");

    let candidates = log
        .events()
        .iter()
        .filter(|e| matches!(e, Event::TunerCandidate { .. }))
        .count() as u64;
    assert_eq!(candidates, m.tuner.candidates_timed);
}

/// Acceptance: the functional apply-path byte counters are
/// execution-strategy invariant — same graph, same inputs, same bytes
/// at every schedule policy and worker count.
#[test]
fn apply_bytes_are_invariant_across_policies_and_parallelism() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = vee_graph(&machine);
    let ins = vee_inputs(9);

    let mut base = Session::new(machine.clone()).with_parallelism(1);
    base.launch_functional(&graph, &ins).unwrap();
    let want = base.metrics().apply_bytes;
    assert!(want.total() > 0);

    for (parallelism, policy) in [
        (2, SchedulePolicy::Serial),
        (8, SchedulePolicy::Serial),
        (4, SchedulePolicy::Concurrent { streams: 2 }),
    ] {
        let mut session = Session::new(machine.clone())
            .with_parallelism(parallelism)
            .with_policy(policy);
        session.launch_functional(&graph, &ins).unwrap();
        assert_eq!(
            session.metrics().apply_bytes,
            want,
            "parallelism {parallelism}, policy {policy:?}"
        );
    }
}

/// Fault recovery is fully observable: a transient fault plus a
/// mid-run device loss under `Retry` bump all four fault counters in
/// the unified snapshot (agreeing with the report's recovery summary),
/// and the recorder stream carries each recovery decision as a
/// `Schedule`-class event.
#[test]
fn fault_recovery_metrics_and_events_flow_through_the_session() {
    use cypress_runtime::{FaultPlan, FaultPolicy, PlacementPolicy};
    let machine = MachineConfig::test_gpu();
    let gemm_p = Program::from_parts(gemm::build(D, D, D, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    for i in 0..8 {
        graph
            .add_node(
                &format!("g{i}"),
                gemm_p.clone(),
                vec![
                    Binding::Zeros,
                    Binding::External(format!("A{i}")),
                    Binding::External(format!("B{i}")),
                ],
            )
            .unwrap();
    }
    let mut clean = Session::new(machine.clone())
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let makespan = clean.launch_timing(&graph).unwrap().makespan;

    let log = TraceLog::new();
    let mut session = Session::new(machine)
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 })
        .with_fault_policy(FaultPolicy::Retry {
            max_attempts: 3,
            backoff: 0.0,
        })
        .with_fault_plan(
            FaultPlan::new()
                .with_transient(0, 0)
                .with_device_loss(1, makespan * 0.5),
        )
        .with_recorder(log.clone());
    let report = session.launch_timing(&graph).unwrap();

    let m = session.metrics();
    assert_eq!(m.faults_injected, 2, "one transient + one device loss: {m}");
    assert!(m.retries >= 1, "{m}");
    assert_eq!(m.devices_evicted, 1, "{m}");
    assert_eq!(
        m.nodes_resharded,
        report.recovery.resharded_nodes.len() as u64,
        "{m}"
    );
    assert!(m.nodes_resharded >= 1, "{m}");
    assert_eq!(m.retries, report.recovery.retries, "{m}");
    let text = m.to_string();
    assert!(text.contains("injected"), "{text}");

    let events = log.events();
    let injected: Vec<(&String, usize, &str)> = events
        .iter()
        .filter_map(|e| match e {
            Event::FaultInjected {
                node, device, kind, ..
            } => {
                assert_eq!(e.class(), EventClass::Schedule);
                Some((node, *device, *kind))
            }
            _ => None,
        })
        .collect();
    assert_eq!(injected.len(), 2, "{injected:?}");
    assert!(injected
        .iter()
        .any(|(_, d, k)| *d == 0 && *k == "transient"));
    assert!(injected
        .iter()
        .any(|(_, d, k)| *d == 1 && *k == "device_loss"));
    assert!(
        events
            .iter()
            .any(|e| matches!(e, Event::NodeRetried { attempt, .. } if *attempt >= 2)),
        "a retried node records its attempt number"
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, Event::DeviceEvicted { device: 1, .. })));
    let resharded: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::Resharded { .. }))
        .collect();
    match resharded.as_slice() {
        [Event::Resharded { device, nodes, .. }] => {
            assert_eq!(*device, 1);
            assert_eq!(nodes, &report.recovery.resharded_nodes);
        }
        other => panic!("expected exactly one Resharded event, got {other:?}"),
    }
}

/// A guided sweep records its ranking as a `Host`-class
/// [`Event::TunerRanked`] whose counters agree with the metrics
/// snapshot (and show up in its Display form), and
/// [`TraceSink::chrome_json_with_host`] exports the ranking on the
/// separate `cat == "host"` timeline next to the graph spans.
#[test]
fn guided_ranking_is_a_host_span_with_counters() {
    let machine = MachineConfig::test_gpu();
    let program =
        Program::from_space(Arc::new(gemm::GemmSpace), Shape::of(&[D, D, D]), &machine).unwrap();

    // Ranking is wall-clock host time: like `CompilePass`, its event is
    // `Host`-class and needs the explicit opt-in.
    let log = TraceLog::new().with_host();
    let mut session = Session::new(machine.clone()).with_recorder(log.clone());
    let tuned = session
        .autotune_with(&program, TunerBudget::TopK(1))
        .unwrap();
    assert!(tuned.candidates >= 1);

    let ranked: Vec<(usize, usize, bool)> = log
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::TunerRanked {
                ranked,
                pruned,
                transferred,
                ..
            } => {
                assert_eq!(e.class(), EventClass::Host, "ranking is host time");
                Some((*ranked, *pruned, *transferred))
            }
            _ => None,
        })
        .collect();
    assert_eq!(ranked.len(), 1, "one sweep, one ranking");
    let (r, p, t) = ranked[0];
    assert_eq!(r, tuned.candidates, "every candidate is ranked");
    assert!(!t, "nothing to transfer from an empty table");

    let m = session.metrics();
    assert_eq!(m.tuner.ranked, r as u64, "{m}");
    assert_eq!(m.tuner.pruned, p as u64, "{m}");
    assert_eq!(m.tuner.transferred, 0, "{m}");
    assert_eq!(p as u64 + m.tuner.candidates_timed, r as u64, "{m}");
    let text = m.to_string();
    for field in ["ranked", "pruned", "transferred"] {
        assert!(text.contains(field), "{text}");
    }

    // Export a graph timeline with the host events appended: the graph
    // spans are untouched and the ranking rides on the host timeline.
    let (graph, _) = chain_graph(&machine);
    let report = session.launch_timing(&graph).unwrap();
    let json = TraceSink::chrome_json_with_host(&report, &log.events());
    let trace = TraceSink::parse_chrome_json(&json).unwrap();
    let (host, graph_spans): (Vec<_>, Vec<_>) = trace.spans.iter().partition(|s| s.cat == "host");
    assert_eq!(graph_spans.len(), report.nodes.len());
    assert!(
        host.iter().any(|s| s.name == "rank:gemm"),
        "host spans: {:?}",
        host.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    for span in host {
        assert_eq!(span.tid, 0);
        assert!(span.ts >= 0.0 && span.dur >= 0.0);
    }
    // The plain exporter stays host-free for determinism comparisons.
    let plain = TraceSink::parse_chrome_json(&TraceSink::chrome_json(&report)).unwrap();
    assert!(plain.spans.iter().all(|s| s.cat != "host"));
}
