//! Integration tests of the task-graph runtime: caching semantics,
//! deterministic execution, and equivalence of graph execution with
//! hand-composed `run_functional` calls.

use cypress_core::compile::{CompilerOptions, CypressCompiler};
use cypress_core::kernels::gemm;
use cypress_runtime::{Binding, Program, Session, TaskGraph};
use cypress_sim::{MachineConfig, Simulator};
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::sync::Arc;

fn gemm_program(m: usize, n: usize, k: usize, machine: &MachineConfig) -> Program {
    Program::from_parts(gemm::build(m, n, k, machine).unwrap(), "gemm")
}

/// A second launch of the same `(tasks, mapping, args, machine)` returns
/// the *identical* compiled kernel — shared storage, no pass re-run.
#[test]
fn cache_hit_returns_identical_kernel() {
    let machine = MachineConfig::test_gpu();
    let mut session = Session::new(machine.clone());
    let program = gemm_program(64, 64, 64, &machine);

    let first = session.compile(&program).unwrap();
    assert_eq!(session.cache_stats().misses, 1);

    // Rebuilding the program from scratch still hits: the fingerprint is
    // structural, not identity-based.
    let rebuilt = gemm_program(64, 64, 64, &machine);
    let second = session.compile(&rebuilt).unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "hit must return the identical kernel"
    );
    let stats = session.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    // A different problem size is a different kernel.
    let other = session
        .compile(&gemm_program(128, 64, 64, &machine))
        .unwrap();
    assert!(!Arc::ptr_eq(&first, &other));
    assert_eq!(session.cache_stats().misses, 2);
}

/// The compiled fingerprint matches what the compiler reports, and a
/// direct compile produces the same kernel the session caches.
#[test]
fn session_kernel_matches_direct_compilation() {
    let machine = MachineConfig::test_gpu();
    let program = gemm_program(64, 64, 64, &machine);
    let mut session = Session::new(machine.clone());
    let cached = session.compile(&program).unwrap();

    let compiler = CypressCompiler::new(CompilerOptions {
        machine,
        ..Default::default()
    });
    let direct = compiler
        .compile(&program.registry, &program.mapping, "gemm", &program.args)
        .unwrap();
    assert_eq!(cached.fingerprint, direct.fingerprint);
    assert_eq!(cached.cuda, direct.cuda);
}

fn two_gemm_graph(machine: &MachineConfig) -> (TaskGraph, cypress_runtime::NodeId) {
    // C1 = A @ B1 (64x64), C2 = C1 @ B2 (64x64).
    let mut graph = TaskGraph::new();
    let first = graph
        .add_node(
            "first",
            gemm_program(64, 64, 64, machine),
            vec![
                Binding::Zeros,
                Binding::external("A"),
                Binding::external("B1"),
            ],
        )
        .unwrap();
    let second = graph
        .add_node(
            "second",
            gemm_program(64, 64, 64, machine),
            vec![
                Binding::Zeros,
                Binding::output(first, 0),
                Binding::external("B2"),
            ],
        )
        .unwrap();
    (graph, second)
}

fn test_inputs(seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    HashMap::from([
        (
            "A".to_string(),
            Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7),
        ),
        (
            "B1".to_string(),
            Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7),
        ),
        (
            "B2".to_string(),
            Tensor::random(DType::F16, &[64, 64], &mut rng, -0.7, 0.7),
        ),
    ])
}

/// Graph execution is a pure function of (graph, inputs): bitwise-equal
/// tensors and identical schedules across runs and across sessions.
#[test]
fn graph_execution_is_deterministic() {
    let machine = MachineConfig::test_gpu();
    let (graph, sink) = two_gemm_graph(&machine);
    let inputs = test_inputs(5);

    let mut s1 = Session::new(machine.clone());
    let r1 = s1.launch_functional(&graph, &inputs).unwrap();
    let r2 = s1.launch_functional(&graph, &inputs).unwrap();
    let mut s2 = Session::new(machine);
    let r3 = s2.launch_functional(&graph, &inputs).unwrap();

    let t1 = r1.tensor(sink, 0).unwrap();
    assert_eq!(
        t1.data(),
        r2.tensor(sink, 0).unwrap().data(),
        "same session, same bits"
    );
    assert_eq!(
        t1.data(),
        r3.tensor(sink, 0).unwrap().data(),
        "fresh session, same bits"
    );
    assert_eq!(r1.report.cycles(), r2.report.cycles());
    assert_eq!(r1.report.events(), r3.report.events());
}

/// A linear GEMM → GEMM graph produces exactly what composing the two
/// `Simulator::run_functional` calls by hand produces.
#[test]
fn linear_graph_matches_hand_composition() {
    let machine = MachineConfig::test_gpu();
    let (graph, sink) = two_gemm_graph(&machine);
    let inputs = test_inputs(6);

    let mut session = Session::new(machine.clone());
    let run = session.launch_functional(&graph, &inputs).unwrap();
    let got = run.tensor(sink, 0).unwrap();

    // Hand composition: compile once, launch twice, thread C1 into A.
    let program = gemm_program(64, 64, 64, &machine);
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let compiled = compiler
        .compile(&program.registry, &program.mapping, "gemm", &program.args)
        .unwrap();
    let sim = Simulator::new(machine);
    let first = sim
        .run_functional(
            &compiled.kernel,
            vec![
                Tensor::zeros(DType::F16, &[64, 64]),
                inputs["A"].clone(),
                inputs["B1"].clone(),
            ],
        )
        .unwrap();
    let c1 = first.params[0].clone();
    let second = sim
        .run_functional(
            &compiled.kernel,
            vec![
                Tensor::zeros(DType::F16, &[64, 64]),
                c1,
                inputs["B2"].clone(),
            ],
        )
        .unwrap();
    assert_eq!(
        got.data(),
        second.params[0].data(),
        "graph == hand composition, bitwise"
    );
}

/// Timing mode accumulates one report per node and sums the makespans.
#[test]
fn timing_mode_reports_per_node_breakdown() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = two_gemm_graph(&machine);
    let mut session = Session::new(machine);
    let report = session.launch_timing(&graph).unwrap();
    assert_eq!(report.nodes.len(), 2);
    assert_eq!(report.nodes[0].node, "first");
    assert_eq!(report.nodes[1].node, "second");
    assert!(report.nodes.iter().all(|n| n.report.cycles > 0.0));
    let sum: f64 = report.nodes.iter().map(|n| n.report.cycles).sum();
    assert_eq!(report.cycles(), sum);
    // Two identical single-kernel launches: one compile, one hit.
    let stats = session.cache_stats();
    assert_eq!((stats.misses, stats.hits), (1, 1));
}

/// Buffers of drained intermediates return to the pool and are reused by
/// later launches.
#[test]
fn intermediate_buffers_recycle_through_the_pool() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = two_gemm_graph(&machine);
    let inputs = test_inputs(7);
    let mut session = Session::new(machine);
    session.launch_functional(&graph, &inputs).unwrap();
    let cold = session.pool_stats();
    session.launch_functional(&graph, &inputs).unwrap();
    let warm = session.pool_stats();
    assert!(
        warm.reused > cold.reused,
        "second launch reuses pooled buffers (cold {cold:?}, warm {warm:?})"
    );
}

/// Missing external inputs fail with a named error, not a panic.
#[test]
fn missing_input_is_reported() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = two_gemm_graph(&machine);
    let mut session = Session::new(machine);
    let err = session
        .launch_functional(&graph, &HashMap::new())
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("missing external input"), "{msg}");
}

/// External inputs must match the parameter's shape and dtype exactly —
/// an equal element count with a different shape or element type is
/// rejected, not silently reinterpreted.
#[test]
fn mis_shaped_and_mis_typed_inputs_are_rejected() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = two_gemm_graph(&machine);
    let mut session = Session::new(machine);

    // 32x128 has the right element count for a 64x64 parameter.
    let mut inputs = test_inputs(8);
    inputs.insert("A".to_string(), Tensor::zeros(DType::F16, &[32, 128]));
    let err = session.launch_functional(&graph, &inputs).unwrap_err();
    assert!(err.to_string().contains("has shape"), "{err}");

    // Right shape, wrong dtype.
    let mut inputs = test_inputs(8);
    inputs.insert("A".to_string(), Tensor::zeros(DType::F32, &[64, 64]));
    let err = session.launch_functional(&graph, &inputs).unwrap_err();
    assert!(err.to_string().contains("has dtype"), "{err}");
}
