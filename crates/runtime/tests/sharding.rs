//! Differential tests of multi-device sharded execution.
//!
//! The standing invariant of [`cypress_runtime::PlacementPolicy`]:
//! tensors are **bitwise identical** across placement policies and
//! device counts, for every schedule policy and host worker count — and
//! `Sharded { devices: 1 }` reproduces `SingleDevice` exactly, timeline
//! included. Random DAGs over the paper kernels exercise the sharder's
//! placement, transfer insertion, and result re-addressing; the
//! deterministic tests below pin down the observability surface
//! (device-qualified reports, Chrome traces, comm counters) and the
//! whole point of the exercise: two devices beat one on fan-out work.

use cypress_core::kernels::{attention, batched, dual_gemm, gemm, gemm_reduction};
use cypress_runtime::telemetry::{Event, TraceLog, TraceSink};
use cypress_runtime::{
    Binding, FusionPolicy, NodeId, PlacementPolicy, Program, SchedulePolicy, Session, TaskGraph,
};
use cypress_sim::MachineConfig;
use cypress_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Uniform problem size: every consumable tensor is `D x D`, so any
/// node's primary output can feed any compatible input slot.
const D: usize = 64;

/// One of the five paper kernels at the uniform size.
fn paper_program(kind: usize, machine: &MachineConfig) -> Program {
    match kind % 5 {
        0 => Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm"),
        1 => Program::from_parts(batched::build(1, D, D, D, machine).unwrap(), "bgemm"),
        2 => Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual"),
        3 => Program::from_parts(gemm_reduction::build(D, D, D, machine).unwrap(), "gr"),
        _ => Program::from_parts(
            attention::build_with(
                attention::Algorithm::Fa2,
                1,
                D,
                D,
                attention::AttentionConfig {
                    br: 64,
                    bc: 64,
                    wgs: 1,
                    pipeline: 1,
                },
            )
            .expect("64-row attention is well-formed"),
            "fa",
        ),
    }
}

/// A random DAG over the paper kernels (same construction as
/// `property_graph.rs`): random fan-out/fan-in plus random retain flags.
fn random_graph(
    seed: u64,
    max_nodes: usize,
    machine: &MachineConfig,
) -> (TaskGraph, Vec<NodeId>, Vec<Program>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(2..max_nodes.max(2) + 1);
    let mut graph = TaskGraph::new();
    let mut ids: Vec<NodeId> = Vec::new();
    let mut programs: Vec<Program> = Vec::new();
    for i in 0..n {
        let prog = paper_program(rng.gen_range(0usize..5), machine);
        let outputs = prog.output_indices();
        let mut bindings = Vec::with_capacity(prog.args.len());
        for (pi, arg) in prog.args.iter().enumerate() {
            if outputs.contains(&pi) {
                bindings.push(Binding::Zeros);
                continue;
            }
            let candidates: Vec<usize> = (0..i)
                .filter(|&j| {
                    let src = &programs[j].args[0];
                    (src.rows, src.cols, src.dtype) == (arg.rows, arg.cols, arg.dtype)
                })
                .collect();
            if !candidates.is_empty() && rng.gen_range(0u32..100) < 60 {
                let j = candidates[rng.gen_range(0..candidates.len())];
                bindings.push(Binding::output(ids[j], 0));
            } else {
                bindings.push(Binding::External(format!("x{i}_{pi}")));
            }
        }
        let id = graph
            .add_node(&format!("n{i}"), prog.clone(), bindings)
            .expect("generated bindings are compatible by construction");
        if rng.gen_range(0u32..2) == 0 {
            graph.retain(id).unwrap();
        }
        ids.push(id);
        programs.push(prog);
    }
    (graph, ids, programs)
}

/// Random external inputs matching every `External` binding's parameter.
fn random_inputs(graph: &TaskGraph, seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5EED_F00D);
    let mut inputs = HashMap::new();
    for node in graph.nodes() {
        for (pi, binding) in node.bindings.iter().enumerate() {
            if let Binding::External(name) = binding {
                let arg = &node.program.args[pi];
                inputs.insert(
                    name.clone(),
                    Tensor::random(arg.dtype, &[arg.rows, arg.cols], &mut rng, -0.5, 0.5),
                );
            }
        }
    }
    inputs
}

/// Assert two runs retained bitwise-identical tensor sets for the
/// original graph's every `(node, param)`; returns how many tensors
/// were compared.
fn assert_runs_match(
    a: &cypress_runtime::GraphRun,
    b: &cypress_runtime::GraphRun,
    ids: &[NodeId],
    programs: &[Program],
    label: &str,
) -> usize {
    let mut compared = 0usize;
    for (i, &id) in ids.iter().enumerate() {
        for pi in 0..programs[i].args.len() {
            match (a.tensor(id, pi), b.tensor(id, pi)) {
                (Some(x), Some(y)) => {
                    assert_eq!(x.data(), y.data(), "node {i} param {pi} diverged ({label})");
                    compared += 1;
                }
                (None, None) => {}
                _ => panic!("retained tensor sets differ ({label})"),
            }
        }
    }
    compared
}

proptest! {
    /// Sharding is functionally invisible: random DAGs launched under
    /// `Sharded {1, 2, 4}` produce tensors bitwise identical to the
    /// `SingleDevice` run, across schedule policies and host worker
    /// counts.
    #[test]
    fn sharded_tensors_match_single_device(seed in 0u64..1_000_000) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 4, &machine);
        let inputs = random_inputs(&graph, seed);
        let mut session = Session::new(machine.clone());
        let baseline = session.launch_functional(&graph, &inputs).unwrap();
        for devices in [1usize, 2, 4] {
            for policy in [SchedulePolicy::Serial, SchedulePolicy::Concurrent { streams: 8 }] {
                for parallelism in [1usize, 8] {
                    session.set_placement_policy(PlacementPolicy::Sharded { devices });
                    session.set_policy(policy);
                    session.set_parallelism(parallelism);
                    let sharded = session.launch_functional(&graph, &inputs).unwrap();
                    let label = format!(
                        "seed {seed}, devices {devices}, policy {policy:?}, parallelism {parallelism}"
                    );
                    let compared =
                        assert_runs_match(&baseline, &sharded, &ids, &programs, &label);
                    prop_assert!(compared > 0, "every graph retains at least its sinks");
                }
            }
        }
    }

    /// `Sharded { devices: 1 }` *is* `SingleDevice`: the timing report —
    /// makespan, critical path, every node's `(device, stream, start,
    /// end)` — matches bit for bit at every stream count.
    #[test]
    fn one_device_sharded_matches_single_device_timing(
        seed in 0u64..1_000_000,
        streams in 1usize..5,
    ) {
        let machine = MachineConfig::test_gpu();
        let (graph, _, _) = random_graph(seed, 5, &machine);
        let mut session =
            Session::new(machine.clone()).with_policy(SchedulePolicy::Concurrent { streams });
        let single = session.launch_timing(&graph).unwrap();
        session.set_placement_policy(PlacementPolicy::Sharded { devices: 1 });
        let sharded = session.launch_timing(&graph).unwrap();
        prop_assert_eq!(single.makespan.to_bits(), sharded.makespan.to_bits());
        prop_assert_eq!(single.critical_path.to_bits(), sharded.critical_path.to_bits());
        prop_assert_eq!(single.streams, sharded.streams);
        prop_assert_eq!(single.devices, sharded.devices);
        prop_assert_eq!(single.nodes.len(), sharded.nodes.len());
        for (a, b) in single.nodes.iter().zip(sharded.nodes.iter()) {
            prop_assert_eq!(&a.node, &b.node);
            prop_assert_eq!(a.device, b.device);
            prop_assert_eq!(a.stream, b.stream);
            prop_assert_eq!(a.start.to_bits(), b.start.to_bits());
            prop_assert_eq!(a.end.to_bits(), b.end.to_bits());
        }
    }

    /// Sharding composes with fusion: `FusionPolicy::Auto` under
    /// `Sharded { devices: 2 }` matches the fusion-only single-device
    /// run bit for bit — same retained tensor set (fusion may
    /// internalize intermediates; sharding must not change which), same
    /// bytes.
    #[test]
    fn sharding_composes_with_fusion(seed in 0u64..1_000_000) {
        let machine = MachineConfig::test_gpu();
        let (graph, ids, programs) = random_graph(seed, 4, &machine);
        let inputs = random_inputs(&graph, seed);
        let mut session = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
        let fused_only = session.launch_functional(&graph, &inputs).unwrap();
        session.set_placement_policy(PlacementPolicy::Sharded { devices: 2 });
        session.set_policy(SchedulePolicy::Concurrent { streams: 4 });
        let both = session.launch_functional(&graph, &inputs).unwrap();
        let label = format!("seed {seed}, fusion+sharding");
        assert_runs_match(&fused_only, &both, &ids, &programs, &label);
    }
}

/// Two roots land on two devices; their consumer forces one buffer
/// across the link as an explicit transfer node that shows up in the
/// report with its destination device and in the comm counters.
fn diamond(machine: &MachineConfig) -> (TaskGraph, NodeId) {
    let program = Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    let a = graph
        .add_node(
            "a",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("aA"),
                Binding::external("aB"),
            ],
        )
        .unwrap();
    let b = graph
        .add_node(
            "b",
            program.clone(),
            vec![
                Binding::Zeros,
                Binding::external("bA"),
                Binding::external("bB"),
            ],
        )
        .unwrap();
    let c = graph
        .add_node(
            "c",
            program,
            vec![Binding::Zeros, Binding::output(a, 0), Binding::output(b, 0)],
        )
        .unwrap();
    (graph, c)
}

/// The sharded timeline carries the transfer node, the comm counters
/// count it, and the telemetry stream names every placement decision.
#[test]
fn transfers_hit_the_report_counters_and_events() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = diamond(&machine);
    let log = TraceLog::new();
    let mut session = Session::new(machine)
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 })
        .with_recorder(log.clone());
    let report = session.launch_timing(&graph).unwrap();

    assert_eq!(report.devices, 2);
    assert_eq!(report.nodes.len(), 4, "three originals plus one transfer");
    let xfer = report
        .nodes
        .iter()
        .find(|n| n.node.starts_with("xfer:"))
        .expect("the cross-device edge becomes a transfer node");
    assert_eq!(xfer.device, 0, "transfers run on their destination device");
    assert!(report.nodes.iter().any(|n| n.device == 1));
    assert!(
        report.breakdown().contains(&format!("d{}/s", xfer.device)),
        "breakdown labels are device-qualified:\n{}",
        report.breakdown()
    );
    let csv = report.breakdown_csv();
    assert!(
        csv.starts_with("node,device,stream,"),
        "CSV carries the device column: {csv}"
    );

    let m = session.metrics();
    assert_eq!(m.comm_launches, 1, "{m}");
    assert_eq!(m.link_bytes, (D * D * 2) as u64, "{m}");
    let rendered = m.to_string();
    assert!(rendered.contains("comm    launches 1"), "{rendered}");

    let events = log.events();
    let assigned: Vec<(String, usize)> = events
        .iter()
        .filter_map(|e| match e {
            Event::ShardAssigned { node, device } => Some((node.clone(), *device)),
            _ => None,
        })
        .collect();
    assert_eq!(assigned.len(), 4, "one assignment per sharded-graph node");
    assert!(assigned.iter().any(|(n, d)| n == "a" && *d == 0));
    assert!(assigned.iter().any(|(n, d)| n == "b" && *d == 1));
    let transfers: Vec<&Event> = events
        .iter()
        .filter(|e| matches!(e, Event::LinkTransfer { .. }))
        .collect();
    match transfers.as_slice() {
        [Event::LinkTransfer {
            src, dst, bytes, ..
        }] => {
            assert_eq!((*src, *dst), (1, 0));
            assert_eq!(*bytes, (D * D * 2) as f64);
        }
        other => panic!("expected exactly one LinkTransfer, got {other:?}"),
    }
}

/// The Chrome trace declares the device count and packs each device's
/// streams into a contiguous `tid` band.
#[test]
fn chrome_trace_is_device_qualified() {
    let machine = MachineConfig::test_gpu();
    let (graph, _) = diamond(&machine);
    let mut session = Session::new(machine)
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let report = session.launch_timing(&graph).unwrap();
    let json = TraceSink::chrome_json(&report);
    let trace = TraceSink::parse_chrome_json(&json).unwrap();
    assert_eq!(trace.devices, Some(2));
    assert_eq!(trace.streams, Some(2));
    assert_eq!(trace.spans.len(), report.nodes.len());
    for span in &trace.spans {
        let node = report
            .nodes
            .iter()
            .find(|n| n.node == span.name)
            .expect("span maps to a report node");
        assert_eq!(span.tid, node.device * report.streams + node.stream);
    }
    assert!(
        trace.spans.iter().any(|s| s.tid >= report.streams),
        "device 1's spans land in the second tid band"
    );
}

/// The acceptance claim: on the 8-wide fan-out graph under concurrent
/// scheduling, two sharded devices strictly beat one device's makespan
/// (and tensors never change).
#[test]
fn two_devices_beat_one_on_fanout() {
    let machine = MachineConfig::test_gpu();
    let size = 256;
    let program = Program::from_parts(gemm::build(size, size, size, &machine).unwrap(), "gemm");
    let mut graph = TaskGraph::new();
    for i in 0..8 {
        graph
            .add_node(
                &format!("g{i}"),
                program.clone(),
                vec![
                    Binding::Zeros,
                    Binding::External(format!("A{i}")),
                    Binding::External(format!("B{i}")),
                ],
            )
            .unwrap();
    }
    let mut session = Session::new(machine).with_policy(SchedulePolicy::Concurrent { streams: 8 });
    let single = session.launch_timing(&graph).unwrap();
    session.set_placement_policy(PlacementPolicy::Sharded { devices: 2 });
    let sharded = session.launch_timing(&graph).unwrap();
    assert_eq!(sharded.devices, 2);
    assert!(
        sharded.makespan < single.makespan,
        "2-device makespan {} must beat 1-device {}",
        sharded.makespan,
        single.makespan
    );
}
