//! Determinism and stream-count regression tests for concurrent graph
//! scheduling: the same graph scheduled concurrently twice produces
//! identical reports and tensors, one stream reproduces the serial
//! numbers exactly, and a fan-out graph demonstrably overlaps.
//!
//! The telemetry event stream rides the same contract (see the
//! determinism table in `cypress_runtime::telemetry`): recorded streams
//! are bit-identical across repeat runs, worker counts agree on every
//! event the wave executor emits, and schedule policies agree on all
//! [`EventClass::Flow`] events.

use cypress_core::kernels::{dual_gemm, gemm, gemm_reduction};
use cypress_runtime::telemetry::TraceLog;
use cypress_runtime::{
    Binding, Event, EventClass, GraphReport, NodeId, Program, SchedulePolicy, Session, TaskGraph,
};
use cypress_sim::MachineConfig;
use cypress_tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

const D: usize = 64;

/// The acceptance fan-out graph: four independent GEMMs feeding a
/// two-level reduction (two dual-GEMM combiners, then a GEMM+Reduction
/// sink). Width 4, depth 3 — plenty of exposed parallelism.
fn fan_out_graph(machine: &MachineConfig) -> (TaskGraph, Vec<NodeId>, NodeId) {
    let gemm_p = Program::from_parts(gemm::build(D, D, D, machine).unwrap(), "gemm");
    let dual_p = Program::from_parts(dual_gemm::build(D, D, D, machine).unwrap(), "dual");
    let gr_p = Program::from_parts(gemm_reduction::build(D, D, D, machine).unwrap(), "gr");

    let mut graph = TaskGraph::new();
    let gemms: Vec<NodeId> = (0..4)
        .map(|i| {
            graph
                .add_node(
                    &format!("gemm{i}"),
                    gemm_p.clone(),
                    vec![
                        Binding::Zeros,
                        Binding::External(format!("A{i}")),
                        Binding::External(format!("B{i}")),
                    ],
                )
                .unwrap()
        })
        .collect();
    let comb0 = graph
        .add_node(
            "combine01",
            dual_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::output(gemms[0], 0),
                Binding::output(gemms[1], 0),
            ],
        )
        .unwrap();
    let comb1 = graph
        .add_node(
            "combine23",
            dual_p,
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::output(gemms[2], 0),
                Binding::output(gemms[3], 0),
            ],
        )
        .unwrap();
    let sink = graph
        .add_node(
            "reduce",
            gr_p,
            vec![
                Binding::Zeros,
                Binding::Zeros,
                Binding::output(comb0, 0),
                Binding::output(comb1, 0),
            ],
        )
        .unwrap();
    (graph, gemms, sink)
}

fn inputs(seed: u64) -> HashMap<String, Tensor> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut m = HashMap::new();
    for name in ["A0", "B0", "A1", "B1", "A2", "B2", "A3", "B3", "X"] {
        m.insert(
            name.to_string(),
            Tensor::random(DType::F16, &[D, D], &mut rng, -0.5, 0.5),
        );
    }
    m
}

fn assert_reports_identical(a: &GraphReport, b: &GraphReport) {
    assert_eq!(a.makespan.to_bits(), b.makespan.to_bits());
    assert_eq!(a.critical_path.to_bits(), b.critical_path.to_bits());
    assert_eq!(a.nodes.len(), b.nodes.len());
    for (x, y) in a.nodes.iter().zip(&b.nodes) {
        assert_eq!(x.node, y.node);
        assert_eq!(x.stream, y.stream);
        assert_eq!(x.start.to_bits(), y.start.to_bits());
        assert_eq!(x.end.to_bits(), y.end.to_bits());
        assert_eq!(x.report.cycles.to_bits(), y.report.cycles.to_bits());
    }
}

/// The acceptance criterion: a fan-out graph overlaps under the
/// concurrent policy — `critical_path <= makespan < serial_sum` — and
/// four streams actually use more than one stream.
#[test]
fn fan_out_overlaps_under_concurrent_policy() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fan_out_graph(&machine);
    let mut session = Session::new(machine);

    let serial = session.launch_timing(&graph).unwrap();
    assert_eq!(serial.makespan, serial.serial_sum());
    assert_eq!(serial.streams, 1);
    assert!(serial.nodes.iter().all(|n| n.stream == 0));

    session.set_policy(SchedulePolicy::Concurrent { streams: 4 });
    let conc = session.launch_timing(&graph).unwrap();
    assert!(
        conc.makespan < serial.serial_sum(),
        "fan-out must overlap: makespan {} vs serial sum {}",
        conc.makespan,
        serial.serial_sum()
    );
    assert!(
        conc.makespan >= conc.critical_path,
        "no schedule beats the critical path: {} < {}",
        conc.makespan,
        conc.critical_path
    );
    assert!(
        conc.nodes.iter().any(|n| n.stream > 0),
        "four streams must actually be used"
    );
    assert!(conc.overlap_speedup() > 1.0);
    // The four independent GEMMs all start at cycle 0.
    for i in 0..4 {
        let t = conc.timeline(&format!("gemm{i}")).unwrap();
        assert_eq!(t.start, 0.0, "gemm{i} is ready at launch");
    }
}

/// The same graph scheduled concurrently twice — and from a fresh
/// session — produces bit-identical reports and tensors.
#[test]
fn concurrent_scheduling_is_deterministic() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, sink) = fan_out_graph(&machine);
    let ins = inputs(11);

    let mut s1 =
        Session::new(machine.clone()).with_policy(SchedulePolicy::Concurrent { streams: 3 });
    let t1 = s1.launch_timing(&graph).unwrap();
    let t2 = s1.launch_timing(&graph).unwrap();
    assert_reports_identical(&t1, &t2);

    let mut s2 = Session::new(machine).with_policy(SchedulePolicy::Concurrent { streams: 3 });
    let t3 = s2.launch_timing(&graph).unwrap();
    assert_reports_identical(&t1, &t3);

    let f1 = s1.launch_functional(&graph, &ins).unwrap();
    let f2 = s2.launch_functional(&graph, &ins).unwrap();
    assert_reports_identical(&f1.report, &f2.report);
    assert_eq!(
        f1.tensor(sink, 0).unwrap().data(),
        f2.tensor(sink, 0).unwrap().data(),
        "functional results are bit-identical across sessions"
    );
}

/// Functional tensors do not depend on the schedule policy: data always
/// moves in the deterministic topological order.
#[test]
fn functional_results_are_policy_independent() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, sink) = fan_out_graph(&machine);
    let ins = inputs(13);

    let mut serial = Session::new(machine.clone());
    let rs = serial.launch_functional(&graph, &ins).unwrap();
    let mut conc = Session::new(machine).with_policy(SchedulePolicy::Concurrent { streams: 4 });
    let rc = conc.launch_functional(&graph, &ins).unwrap();

    assert_eq!(
        rs.tensor(sink, 0).unwrap().data(),
        rc.tensor(sink, 0).unwrap().data()
    );
    assert_eq!(
        rs.tensor(sink, 1).unwrap().data(),
        rc.tensor(sink, 1).unwrap().data()
    );
    // The concurrent run's report still shows overlap.
    assert!(rc.report.makespan < rc.report.serial_sum());
    assert_eq!(rs.report.makespan, rs.report.serial_sum());
}

/// Host-side executor parallelism never changes results: the same graph
/// run at `parallelism ∈ {1, 2, 8}` — across repeated launches and
/// across fresh sessions — produces bit-identical tensors and reports.
#[test]
fn functional_results_are_parallelism_independent() {
    let machine = MachineConfig::test_gpu();
    let (graph, gemms, sink) = fan_out_graph(&machine);
    let ins = inputs(17);

    let mut baseline = Session::new(machine.clone()).with_parallelism(1);
    let base = baseline.launch_functional(&graph, &ins).unwrap();

    for parallelism in [1, 2, 8] {
        let mut session = Session::new(machine.clone()).with_parallelism(parallelism);
        assert_eq!(session.parallelism(), parallelism);
        let first = session.launch_functional(&graph, &ins).unwrap();
        // Same session again: pool-recycled buffers must not leak state.
        let second = session.launch_functional(&graph, &ins).unwrap();
        for run in [&first, &second] {
            assert_reports_identical(&base.report, &run.report);
            for param in 0..2 {
                assert_eq!(
                    base.tensor(sink, param).unwrap().data(),
                    run.tensor(sink, param).unwrap().data(),
                    "sink param {param} must be bit-identical at parallelism {parallelism}"
                );
            }
        }
        // Interior fan-out nodes were recycled identically in every mode.
        for &g in &gemms {
            assert_eq!(base.tensor(g, 0).is_some(), first.tensor(g, 0).is_some());
        }
    }
}

/// Parallel execution composes with the concurrent schedule policy: the
/// timing timeline comes from the policy, the tensors from the
/// deterministic executor, and neither depends on the worker count.
#[test]
fn parallelism_composes_with_concurrent_policy() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, sink) = fan_out_graph(&machine);
    let ins = inputs(19);

    let mut serial = Session::new(machine.clone()).with_parallelism(1);
    let rs = serial.launch_functional(&graph, &ins).unwrap();
    let mut parallel = Session::new(machine)
        .with_parallelism(4)
        .with_policy(SchedulePolicy::Concurrent { streams: 4 });
    let rp = parallel.launch_functional(&graph, &ins).unwrap();

    assert_eq!(
        rs.tensor(sink, 0).unwrap().data(),
        rp.tensor(sink, 0).unwrap().data()
    );
    assert!(rp.report.makespan < rp.report.serial_sum());
    assert_eq!(rp.report.streams, 4);
}

/// Stream count 1 reproduces today's serial numbers exactly — same node
/// order, same per-node cycles, same makespan, bit for bit.
#[test]
fn one_stream_reproduces_serial_exactly() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fan_out_graph(&machine);
    let mut session = Session::new(machine);

    let serial = session.launch_timing(&graph).unwrap();
    session.set_policy(SchedulePolicy::Concurrent { streams: 1 });
    let one = session.launch_timing(&graph).unwrap();

    assert_eq!(one.makespan.to_bits(), serial.makespan.to_bits());
    assert_eq!(one.nodes.len(), serial.nodes.len());
    for (a, b) in one.nodes.iter().zip(&serial.nodes) {
        assert_eq!(a.node, b.node, "one stream keeps the serial order");
        assert_eq!(a.start.to_bits(), b.start.to_bits());
        assert_eq!(a.end.to_bits(), b.end.to_bits());
        assert_eq!(a.stream, 0);
    }
}

/// Timing invariants hold at every stream count, and adding streams
/// never hurts this fan-out graph.
#[test]
fn invariants_across_stream_counts() {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fan_out_graph(&machine);
    let mut session = Session::new(machine);
    let serial = session.launch_timing(&graph).unwrap();

    let mut prev = f64::INFINITY;
    for streams in 1..=6 {
        session.set_policy(SchedulePolicy::Concurrent { streams });
        let r = session.launch_timing(&graph).unwrap();
        let eps = 1e-9 * serial.makespan;
        assert!(r.critical_path <= r.makespan + eps, "streams {streams}");
        assert!(r.makespan <= r.serial_sum() + eps, "streams {streams}");
        assert!(
            r.makespan <= prev + eps,
            "more streams never hurt this graph (streams {streams})"
        );
        assert_eq!(r.streams, streams);
        prev = r.makespan;
    }
    // Beyond the graph's width, extra streams change nothing.
    session.set_policy(SchedulePolicy::Concurrent { streams: 4 });
    let four = session.launch_timing(&graph).unwrap();
    session.set_policy(SchedulePolicy::Concurrent { streams: 16 });
    let sixteen = session.launch_timing(&graph).unwrap();
    assert_eq!(four.makespan.to_bits(), sixteen.makespan.to_bits());
}

/// Launch the fan-out graph functionally in a *fresh* session — so
/// cache, pool, and tuner state are identical for every configuration —
/// and return the recorded event stream (host events filtered by the
/// default [`TraceLog`]).
fn recorded_stream(parallelism: usize, policy: SchedulePolicy) -> Vec<Event> {
    let machine = MachineConfig::test_gpu();
    let (graph, _, _) = fan_out_graph(&machine);
    let ins = inputs(23);
    let log = TraceLog::new();
    let mut session = Session::new(machine)
        .with_parallelism(parallelism)
        .with_policy(policy)
        .with_recorder(log.clone());
    session.launch_functional(&graph, &ins).unwrap();
    log.events()
}

/// The events of `stream` whose class is in `keep`, in emission order.
fn filtered(stream: &[Event], keep: &[EventClass]) -> Vec<Event> {
    stream
        .iter()
        .filter(|e| keep.contains(&e.class()))
        .cloned()
        .collect()
}

/// Repeat-run row of the telemetry determinism table: at fixed settings
/// the full recorded stream is bit-identical across runs, and it covers
/// the graph — one submission, one execution and one span per node.
#[test]
fn event_stream_is_identical_across_repeat_runs() {
    for (parallelism, policy) in [
        (1, SchedulePolicy::Serial),
        (4, SchedulePolicy::Concurrent { streams: 3 }),
    ] {
        let a = recorded_stream(parallelism, policy);
        let b = recorded_stream(parallelism, policy);
        assert!(!a.is_empty(), "parallelism {parallelism}");
        assert_eq!(a, b, "parallelism {parallelism}: repeat runs diverged");

        let count = |pred: fn(&&Event) -> bool| a.iter().filter(pred).count();
        assert_eq!(count(|e| matches!(e, Event::GraphSubmitted { .. })), 1);
        assert_eq!(count(|e| matches!(e, Event::NodeExecuted { .. })), 7);
        assert_eq!(count(|e| matches!(e, Event::NodeSpan { .. })), 7);
        assert_eq!(count(|e| matches!(e, Event::CacheLookup { .. })), 7);
    }
}

/// Worker-count rows: the wave executor's stream is identical
/// event-for-event at parallelism 2 and 8, and the serial walk
/// (parallelism 1) agrees on every [`EventClass::Flow`] and
/// [`EventClass::Schedule`] event — it only lacks the wave/pool
/// interleaving detail ([`EventClass::Exec`]), because it has no waves.
#[test]
fn event_stream_is_identical_across_worker_counts() {
    let policy = SchedulePolicy::Concurrent { streams: 4 };
    let p1 = recorded_stream(1, policy);
    let p2 = recorded_stream(2, policy);
    let p8 = recorded_stream(8, policy);
    assert_eq!(p2, p8, "worker count leaked into the event stream");
    assert_eq!(
        filtered(&p1, &[EventClass::Flow, EventClass::Schedule]),
        filtered(&p2, &[EventClass::Flow, EventClass::Schedule]),
        "serial walk and wave executor disagree on flow/schedule events"
    );
    assert!(
        p2.iter().any(|e| matches!(e, Event::WaveScheduled { .. })),
        "the wave executor must record its waves"
    );
    assert!(
        !p1.iter().any(|e| matches!(e, Event::WaveScheduled { .. })),
        "the serial walk has no waves to record"
    );
}

/// Policy row: [`EventClass::Flow`] events are schedule-policy
/// independent; only the [`EventClass::Schedule`] spans — the policy's
/// actual output — differ, and for this overlapping fan-out they must.
#[test]
fn flow_events_are_policy_independent() {
    let serial = recorded_stream(2, SchedulePolicy::Serial);
    let conc = recorded_stream(2, SchedulePolicy::Concurrent { streams: 4 });
    assert_eq!(
        filtered(&serial, &[EventClass::Flow]),
        filtered(&conc, &[EventClass::Flow]),
        "dataflow decisions leaked the schedule policy"
    );
    assert_ne!(
        filtered(&serial, &[EventClass::Schedule]),
        filtered(&conc, &[EventClass::Schedule]),
        "the fan-out graph overlaps, so the span timelines must differ"
    );
}
