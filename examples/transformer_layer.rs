//! A transformer layer as ONE task graph: attention → dual-GEMM (the GLU
//! up-projection, Fig. 13c) → GEMM+Reduction (down-projection fused with a
//! row statistic, Fig. 13d) — the repo's first multi-kernel scenario.
//!
//! The `cypress::runtime` session compiles each distinct program once
//! (fingerprint-keyed kernel cache), threads attention's output buffer
//! into the dual-GEMM's `A` slot and that result into the projection's
//! `A` slot (tensor-buffer edges), and checks every stage against the
//! host oracle. A second launch of the same graph hits the cache for all
//! three kernels.
//!
//! Run with `cargo run --release --example transformer_layer`.

use cypress::core::kernels::{attention, dual_gemm, gemm_reduction};
use cypress::runtime::{Binding, Program, SchedulePolicy, Session, TaskGraph};
use cypress::sim::MachineConfig;
use cypress::tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::test_gpu();
    let (seq, d) = (128usize, 64usize);

    // --- Build the three programs -------------------------------------
    let attn = Program::from_parts(
        attention::build(attention::Algorithm::Fa2, 1, seq, d, &machine)?,
        "fa",
    );
    // GLU up-projection: G = O·W1 + O·W2 in one kernel.
    let glu = Program::from_parts(dual_gemm::build(seq, d, d, &machine)?, "dual");
    // Down-projection fused with the row reduction: P = G·W3, y = Σ_k G.
    let proj = Program::from_parts(gemm_reduction::build(seq, d, d, &machine)?, "gr");
    let y_cols = proj.args[1].cols;

    // --- Wire them into one graph with tensor-buffer edges ------------
    let mut graph = TaskGraph::new();
    let n_attn = graph.add_node(
        "attention",
        attn,
        vec![
            Binding::Zeros, // O
            Binding::external("Q"),
            Binding::external("K"),
            Binding::external("V"),
        ],
    )?;
    let n_glu = graph.add_node(
        "glu_dual_gemm",
        glu,
        vec![
            Binding::Zeros,             // G
            Binding::output(n_attn, 0), // A := attention's O buffer
            Binding::external("W1"),
            Binding::external("W2"),
        ],
    )?;
    let n_proj = graph.add_node(
        "proj_gemm_reduction",
        proj,
        vec![
            Binding::Zeros,            // P
            Binding::Zeros,            // y partials
            Binding::output(n_glu, 0), // A := the GLU's G buffer
            Binding::external("W3"),
        ],
    )?;
    // Keep the intermediates so we can check them against the oracle.
    graph.retain(n_attn)?;
    graph.retain(n_glu)?;

    // --- Inputs --------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(2025);
    let mut t = |r: usize, c: usize, s: f32| Tensor::random(DType::F16, &[r, c], &mut rng, -s, s);
    let inputs = HashMap::from([
        ("Q".to_string(), t(seq, d, 1.0)),
        ("K".to_string(), t(seq, d, 1.0)),
        ("V".to_string(), t(seq, d, 1.0)),
        ("W1".to_string(), t(d, d, 0.5)),
        ("W2".to_string(), t(d, d, 0.5)),
        ("W3".to_string(), t(d, d, 0.5)),
    ]);

    // --- Launch and verify against the host oracle ---------------------
    let mut session = Session::new(machine.clone());
    let run = session.launch_functional(&graph, &inputs)?;

    let o_want = reference::attention(&inputs["Q"], &inputs["K"], &inputs["V"], DType::F16)?;
    let o_got = run.tensor(n_attn, 0).expect("attention output retained");
    let err_o = o_got.relative_error(&o_want)?;
    assert!(err_o < 3e-2, "attention relative error {err_o}");

    let g1 = reference::matmul(&o_want, &inputs["W1"], DType::F32)?;
    let g2 = reference::matmul(&o_want, &inputs["W2"], DType::F32)?;
    let mut g_want = Tensor::zeros(DType::F16, &[seq, d]);
    for i in 0..seq * d {
        g_want.data_mut()[i] = DType::F16.quantize(g1.data()[i] + g2.data()[i]);
    }
    let g_got = run.tensor(n_glu, 0).expect("GLU output retained");
    let err_g = g_got.relative_error(&g_want)?;
    assert!(err_g < 3e-2, "dual-GEMM relative error {err_g}");

    let p_want = reference::matmul(&g_want, &inputs["W3"], DType::F16)?;
    let p_got = run.tensor(n_proj, 0).expect("projection is a sink");
    let err_p = p_got.relative_error(&p_want)?;
    assert!(err_p < 3e-2, "projection relative error {err_p}");

    // The reduction output is per-block-column partials; sum them.
    let y_want = reference::row_sum(&g_want, DType::F32)?;
    let y_got = run.tensor(n_proj, 1).expect("reduction is a sink");
    let mut y_total = Tensor::zeros(DType::F32, &[seq, 1]);
    for i in 0..seq {
        y_total.data_mut()[i] = (0..y_cols).map(|j| y_got.data()[i * y_cols + j]).sum();
    }
    let err_y = y_total.relative_error(&y_want)?;
    assert!(err_y < 3e-2, "reduction relative error {err_y}");

    println!("transformer layer graph: 3 nodes, all stages match the host oracle");
    println!("  attention   relative error {err_o:.4}");
    println!("  dual-GEMM   relative error {err_g:.4}");
    println!("  projection  relative error {err_p:.4} (row-sum {err_y:.4})");
    println!("\nper-node timing breakdown:\n{}", run.report.breakdown());

    // --- Schedule policies: a linear chain has nothing to overlap -------
    // attention → dual-GEMM → projection is a dependency chain, so the
    // concurrent scheduler runs one node at a time and the makespan
    // stays pinned to the critical path (= the serial sum). Contrast
    // with `examples/graph_overlap.rs`, where a fan-out graph overlaps.
    let serial_timing = session.launch_timing(&graph)?;
    session.set_policy(SchedulePolicy::Concurrent { streams: 2 });
    let conc_timing = session.launch_timing(&graph)?;
    session.set_policy(SchedulePolicy::Serial);
    assert_eq!(
        conc_timing.makespan, serial_timing.makespan,
        "a chain gains nothing from streams"
    );
    assert_eq!(conc_timing.makespan, conc_timing.critical_path);
    println!(
        "chain timing: serial {:.0} cycles == concurrent {:.0} (critical path {:.0})",
        serial_timing.makespan, conc_timing.makespan, conc_timing.critical_path
    );

    // --- Second launch: every kernel comes from the cache ---------------
    let cold = session.cache_stats();
    session.launch_functional(&graph, &inputs)?;
    let warm = session.cache_stats();
    println!(
        "kernel cache: {} misses cold, {} hits on relaunch (entries {})",
        cold.misses,
        warm.hits - cold.hits,
        warm.entries
    );
    assert_eq!(cold.misses, 3, "three distinct programs compile once each");
    assert_eq!(warm.hits - cold.hits, 3, "relaunch compiles nothing");

    // --- Steady-state serving: same programs, no retained intermediates.
    // The new graph's fingerprints match the verification graph's, so it
    // compiles nothing, and dead intermediates recycle through the pool.
    let mut serving = TaskGraph::new();
    let attn2 = Program::from_parts(
        attention::build(attention::Algorithm::Fa2, 1, seq, d, &machine)?,
        "fa",
    );
    let glu2 = Program::from_parts(dual_gemm::build(seq, d, d, &machine)?, "dual");
    let proj2 = Program::from_parts(gemm_reduction::build(seq, d, d, &machine)?, "gr");
    let s_attn = serving.add_node(
        "attention",
        attn2,
        vec![
            Binding::Zeros,
            Binding::external("Q"),
            Binding::external("K"),
            Binding::external("V"),
        ],
    )?;
    let s_glu = serving.add_node(
        "glu_dual_gemm",
        glu2,
        vec![
            Binding::Zeros,
            Binding::output(s_attn, 0),
            Binding::external("W1"),
            Binding::external("W2"),
        ],
    )?;
    serving.add_node(
        "proj_gemm_reduction",
        proj2,
        vec![
            Binding::Zeros,
            Binding::Zeros,
            Binding::output(s_glu, 0),
            Binding::external("W3"),
        ],
    )?;
    let before = session.cache_stats();
    for _ in 0..3 {
        let served = session.launch_functional(&serving, &inputs)?;
        let p = served
            .tensor_of("proj_gemm_reduction", 0)
            .expect("sink kept");
        assert!(p.relative_error(&p_want)? < 3e-2);
    }
    let after = session.cache_stats();
    assert_eq!(
        after.misses, before.misses,
        "serving graph compiles nothing new"
    );
    let pool = session.pool_stats();
    println!(
        "serving x3: 0 new compiles; buffer pool {} acquisitions, {} served by reuse",
        pool.acquired, pool.reused
    );
    assert!(
        pool.reused > 0,
        "steady-state launches reuse pooled buffers"
    );

    // --- Automatic fusion: write primitives, get the fused kernels -----
    // The same layer written naively from primitive nodes: attention,
    // two chained GEMMs (an MLP without its hand-fused kernel), and a
    // projection next to a standalone row statistic. Under
    // `FusionPolicy::Auto` the session rewrites the GEMM→GEMM chain into
    // the chained dual-GEMM kernel and the GEMM + row-reduction pair
    // into the Fig. 13d GEMM+Reduction kernel — five written launches
    // become three, bitwise identical.
    use cypress::core::kernels::{gemm, reduction};
    use cypress::runtime::FusionPolicy;
    let mut naive = TaskGraph::new();
    let p_attn = naive.add_node(
        "attention",
        Program::from_parts(
            attention::build(attention::Algorithm::Fa2, 1, seq, d, &machine)?,
            "fa",
        ),
        vec![
            Binding::Zeros,
            Binding::external("Q"),
            Binding::external("K"),
            Binding::external("V"),
        ],
    )?;
    let p_up = naive.add_node(
        "mlp_up",
        Program::from_parts(gemm::build(seq, d, d, &machine)?, "gemm"),
        vec![
            Binding::Zeros,
            Binding::output(p_attn, 0),
            Binding::external("W1"),
        ],
    )?;
    let p_down = naive.add_node(
        "mlp_down",
        Program::from_parts(gemm::build(seq, d, d, &machine)?, "gemm"),
        vec![
            Binding::Zeros,
            Binding::output(p_up, 0),
            Binding::external("W2"),
        ],
    )?;
    let p_proj = naive.add_node(
        "proj",
        Program::from_parts(gemm::build(seq, d, d, &machine)?, "gemm"),
        vec![
            Binding::Zeros,
            Binding::output(p_down, 0),
            Binding::external("W3"),
        ],
    )?;
    let p_stat = naive.add_node(
        "row_stat",
        Program::from_parts(reduction::build(seq, d, &machine)?, "reduce"),
        vec![Binding::Zeros, Binding::output(p_down, 0)],
    )?;

    let mut unfused = Session::new(machine.clone());
    let unfused_run = unfused.launch_functional(&naive, &inputs)?;
    let unfused_timing = unfused.launch_timing(&naive)?;

    let mut fusing = Session::new(machine.clone()).with_fusion_policy(FusionPolicy::Auto);
    let fused_run = fusing.launch_functional(&naive, &inputs)?;
    let fused_timing = fusing.launch_timing(&naive)?;

    for (node, param, label) in [(p_proj, 0, "projection"), (p_stat, 0, "row statistic")] {
        let want = unfused_run.tensor(node, param).expect("sink kept");
        let got = fused_run.tensor(node, param).expect("kept under fusion");
        assert_eq!(got.data(), want.data(), "{label} must be bitwise identical");
    }
    assert_eq!(unfused_timing.nodes.len(), 5, "written as five launches");
    assert_eq!(fused_timing.nodes.len(), 3, "fused down to three launches");
    assert!(fused_timing.makespan < unfused_timing.makespan);
    println!(
        "\nfusion: {} written launches -> {} ({}), makespan {:.0} -> {:.0} cycles ({:.2}x)",
        unfused_timing.nodes.len(),
        fused_timing.nodes.len(),
        fused_timing
            .nodes
            .iter()
            .filter(|n| !n.replaced.is_empty())
            .map(|n| format!("{} replaces [{}]", n.node, n.replaced.join(", ")))
            .collect::<Vec<_>>()
            .join("; "),
        unfused_timing.makespan,
        fused_timing.makespan,
        unfused_timing.makespan / fused_timing.makespan
    );
    // Dead intermediates vanish under fusion; the `mlp_down` output is
    // still consumed by two fused launches, so it survives.
    assert!(fused_run.tensor(p_up, 0).is_none());
    println!("fused timeline:\n{}", fused_timing.breakdown());
    Ok(())
}
