//! Watch the compiler work: print the event IR after dependence analysis,
//! vectorization, and copy elimination (mirroring the paper's Fig. 8/9),
//! then the final warp-specialized pseudo-CUDA (mirroring Fig. 1b).
//!
//! ```sh
//! cargo run --release --example compiler_pipeline
//! ```

use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::gemm;
use cypress::sim::MachineConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::test_gpu();
    let (reg, mapping, args) = gemm::build(128, 128, 64, &machine)?;
    let compiler = CypressCompiler::new(CompilerOptions {
        machine,
        spill_first: true,
        dump_ir: true,
    });
    let compiled = compiler.compile(&reg, &mapping, "gemm", &args)?;
    for (pass, dump) in &compiled.ir_dumps {
        println!("==================== after {pass} ====================");
        // The depan dump is large (the full instantiated task tree); show
        // the head and tail.
        let lines: Vec<&str> = dump.lines().collect();
        if lines.len() > 60 {
            for l in &lines[..30] {
                println!("{l}");
            }
            println!("... ({} lines elided) ...", lines.len() - 60);
            for l in &lines[lines.len() - 30..] {
                println!("{l}");
            }
        } else {
            println!("{dump}");
        }
    }
    println!("==================== generated kernel ====================");
    println!("{}", compiled.cuda);
    Ok(())
}
