//! Mapping exploration (paper §5.4): sweep performance-sensitive mapping
//! decisions — pipeline depth, warpgroup count, warp specialization —
//! with *no change to the logical description*, and print the simulated
//! throughput landscape.
//!
//! ```sh
//! cargo run --release --example mapping_explorer
//! ```

use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::gemm::{self, GemmConfig};
use cypress::sim::{MachineConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::h100_sxm5();
    let sim = Simulator::new(machine.clone());
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let size = 4096;
    let fl = gemm::flops(size, size, size);

    println!("GEMM {size}^3 mapping landscape (simulated H100):");
    println!(
        "{:>6} {:>5} {:>10} {:>12} {:>8}",
        "pipe", "wgs", "warpspec", "TFLOP/s", "tc busy"
    );
    for warpspecialize in [true, false] {
        for pipeline in 1..=3usize {
            for wgs in [1usize, 2] {
                // One warpgroup requires 64-row block tiles (wgmma m = 64).
                let u = if wgs == 1 { 64 } else { 128 };
                let cfg = GemmConfig {
                    pipeline,
                    wgs,
                    u,
                    warpspecialize,
                    ..GemmConfig::h100()
                };
                let Ok((reg, mapping, args)) = gemm::build_with(size, size, size, cfg) else {
                    continue;
                };
                let compiled = match compiler.compile(&reg, &mapping, "gemm", &args) {
                    Ok(c) => c,
                    Err(e) => {
                        println!(
                            "{pipeline:>6} {wgs:>5} {warpspecialize:>10} {:>12}",
                            format!("-- {e}")
                        );
                        continue;
                    }
                };
                let t = sim.run_timing(&compiled.kernel)?;
                println!(
                    "{pipeline:>6} {wgs:>5} {warpspecialize:>10} {:>12.0} {:>7.0}%",
                    t.tflops_for(fl),
                    t.tc_utilization * 100.0
                );
            }
        }
    }
    println!("\nEvery row is the same logical description; only the mapping changed.");
    Ok(())
}
