//! Mapping exploration (paper §5.4): sweep performance-sensitive mapping
//! decisions — pipeline depth, warpgroup count, warp specialization —
//! with *no change to the logical description*, and print the simulated
//! throughput landscape. Then let the runtime's autotuner do the same
//! search automatically: `Session::autotune` walks the kernel's
//! `MappingSpace`, times every candidate, and records the winner in a
//! tuning table that persists across sessions.
//!
//! ```sh
//! cargo run --release --example mapping_explorer
//! ```

use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::gemm::{self, GemmConfig, GemmSpace};
use cypress::core::kernels::space::Shape;
use cypress::runtime::{MappingPolicy, Program, Session};
use cypress::sim::{MachineConfig, Simulator};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::h100_sxm5();
    let sim = Simulator::new(machine.clone());
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let size = 4096;
    let fl = gemm::flops(size, size, size);

    println!("GEMM {size}^3 mapping landscape (simulated H100):");
    println!(
        "{:>6} {:>5} {:>10} {:>12} {:>8}",
        "pipe", "wgs", "warpspec", "TFLOP/s", "tc busy"
    );
    for warpspecialize in [true, false] {
        for pipeline in 1..=3usize {
            for wgs in [1usize, 2] {
                // One warpgroup requires 64-row block tiles (wgmma m = 64).
                let u = if wgs == 1 { 64 } else { 128 };
                let cfg = GemmConfig {
                    pipeline,
                    wgs,
                    u,
                    warpspecialize,
                    ..GemmConfig::h100()
                };
                let Ok((reg, mapping, args)) = gemm::build_with(size, size, size, cfg) else {
                    continue;
                };
                let compiled = match compiler.compile(&reg, &mapping, "gemm", &args) {
                    Ok(c) => c,
                    Err(e) => {
                        println!(
                            "{pipeline:>6} {wgs:>5} {warpspecialize:>10} {:>12}",
                            format!("-- {e}")
                        );
                        continue;
                    }
                };
                let t = sim.run_timing(&compiled.kernel)?;
                println!(
                    "{pipeline:>6} {wgs:>5} {warpspecialize:>10} {:>12.0} {:>7.0}%",
                    t.tflops_for(fl),
                    t.tc_utilization * 100.0
                );
            }
        }
    }
    println!("\nEvery row is the same logical description; only the mapping changed.");

    // The same search, automated: Session::autotune walks the kernel's
    // MappingSpace (candidates are validated against the machine and
    // shape, compiled through the kernel cache, and timed), then the
    // session transparently launches the winner under
    // MappingPolicy::Autotune. At a small size the hand-tuned H100
    // tiles underfill the device and the tuner finds a better point.
    let mut session = Session::new(machine.clone()).with_mapping_policy(MappingPolicy::Autotune);
    println!("\nAutotuned GEMM mappings (simulated H100):");
    for s in [512usize, 1024, size] {
        let program = Program::from_space(Arc::new(GemmSpace), Shape::of(&[s, s, s]), &machine)?;
        let tuned = session.autotune(&program)?;
        println!(
            "  {s:>5}^3: {} -> {:.2}x over hand-tuned ({} candidates)",
            tuned.config.label(),
            tuned.speedup(),
            tuned.candidates
        );
    }
    println!(
        "tuning table: {} entries; TuningTable::save/load persists them across sessions",
        session.tuning_table().len()
    );
    Ok(())
}
