//! The tensor-parallel transformer MLP from `multi_gpu.rs` surviving
//! faults mid-run: a transient kernel fault on one device and a
//! permanent device loss on the other, both injected from a
//! deterministic [`FaultPlan`](cypress::runtime::FaultPlan).
//!
//! Under `FaultPolicy::Retry` the scheduler re-executes the transient
//! casualty (a `retry:` span marks the failed attempt), evicts the lost
//! device, re-plans its pending work onto the survivor (`reshard:dN`
//! boundary marker), and re-routes any stranded producer buffers with
//! `xfer:recover:` transfers. Because Cypress computes tensors in the
//! functional domain before the timing schedule runs, the recovered
//! output is **bitwise identical** to the fault-free single-device run
//! — faults cost cycles, never bits.
//!
//! The recovered 2-device timeline is exported as Chrome-trace JSON
//! with device-banded lanes; the `retry:`/`reshard:` spans are visible
//! at <https://ui.perfetto.dev> and validated in CI by `check_trace`.
//!
//! Run with `cargo run --release --example fault_recovery [trace.json]`
//! (the trace defaults to `target/fault_recovery_trace.json`).

use cypress::core::kernels::{comm, gemm};
use cypress::runtime::telemetry::TraceLog;
use cypress::runtime::{
    Binding, FaultPlan, FaultPolicy, PlacementPolicy, Program, SchedulePolicy, Session, TaskGraph,
    TraceSink,
};
use cypress::sim::MachineConfig;
use cypress::tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::test_gpu();
    let d = 64usize;

    let gemm_p = Program::from_parts(gemm::build(d, d, d, &machine)?, "gemm");
    let allred_p = Program::from_parts(comm::build_all_reduce(2, d, d, &machine)?, "allred");

    // --- The layer: two column-parallel branches + one all-reduce ------
    let mut graph = TaskGraph::new();
    let mut downs = Vec::new();
    for half in 0..2 {
        let up = graph.add_node(
            &format!("up{half}"),
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::External(format!("W{half}")),
            ],
        )?;
        downs.push(graph.add_node(
            &format!("down{half}"),
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::External(format!("V{half}")),
            ],
        )?);
    }
    let sum = graph.add_node(
        "allreduce",
        allred_p,
        vec![
            Binding::Zeros,
            Binding::output(downs[0], 0),
            Binding::output(downs[1], 0),
        ],
    )?;

    // --- Inputs --------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(9);
    let mut t = |s: f32| Tensor::random(DType::F16, &[d, d], &mut rng, -s, s);
    let mut inputs = HashMap::from([("X".to_string(), t(0.5))]);
    for half in 0..2 {
        inputs.insert(format!("W{half}"), t(0.5));
        inputs.insert(format!("V{half}"), t(0.5));
    }

    // --- Fault-free oracles --------------------------------------------
    let mut single = Session::new(machine.clone());
    let base = single.launch_functional(&graph, &inputs)?;
    let y_base = base.tensor(sum, 0).expect("layer output kept");

    let mut clean_session = Session::new(machine.clone())
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let clean = clean_session.launch_timing(&graph)?;
    println!("clean 2-device makespan: {:.0} cycles", clean.makespan);

    // --- The fault plan, aimed with the clean timeline -----------------
    // Kill the device that owns `down1` while that kernel is in flight
    // (so its work must be re-planned onto the survivor), and hit the
    // survivor's first compute launch with a one-shot transient.
    let down1 = clean.timeline("down1").expect("down1 scheduled");
    let victim = down1.device;
    let survivor = 1 - victim;
    let loss_at = 0.5 * (down1.start + down1.end);
    let plan = FaultPlan::new()
        .with_transient(survivor, 0)
        .with_device_loss(victim, loss_at);

    let log = TraceLog::new();
    let mut session = Session::new(machine.clone())
        .with_recorder(log.clone())
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 })
        .with_fault_policy(FaultPolicy::Retry {
            max_attempts: 3,
            backoff: 0.0,
        })
        .with_graph_deadline(clean.makespan * 4.0)
        .with_fault_plan(plan);

    // --- Recovery never changes bits -----------------------------------
    let run = session.launch_functional(&graph, &inputs)?;
    let y_faulted = run.tensor(sum, 0).expect("layer output kept");
    assert_eq!(
        y_base.data(),
        y_faulted.data(),
        "recovered run must be bit-identical to the fault-free baseline"
    );
    println!(
        "device {victim} lost at cycle {loss_at:.0}: output bit-identical to \
         the single-device run"
    );

    // --- The recovered timeline -----------------------------------------
    let report = session.launch_timing(&graph)?;
    let rec = &report.recovery;
    assert_eq!(rec.faults, 2, "one transient + one device loss observed");
    assert!(rec.retries >= 1, "the transient forces a re-execution");
    assert_eq!(rec.evicted_devices, vec![victim], "the victim is evicted");
    assert!(
        !rec.resharded_nodes.is_empty(),
        "in-flight work moves to the survivor"
    );
    assert!(
        rec.overhead_cycles > 0.0,
        "recovery costs cycles over the fault-free schedule"
    );
    let retries = report
        .nodes
        .iter()
        .filter(|n| n.node.starts_with("retry:"))
        .count();
    assert!(retries >= 1, "failed attempts stay on the timeline");
    assert!(
        report.timeline(&format!("reshard:d{victim}")).is_some(),
        "the eviction leaves a re-shard boundary marker"
    );
    println!(
        "recovered on device {survivor}: {} resharded node(s), {} retry \
         span(s), +{:.0} cycles over clean ({:.2}x)",
        rec.resharded_nodes.len(),
        retries,
        rec.overhead_cycles,
        report.makespan / clean.makespan
    );

    // --- Chrome-trace export with the recovery spans --------------------
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/fault_recovery_trace.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = TraceSink::chrome_json(&report);
    std::fs::write(&out, &json)?;
    let trace = TraceSink::parse_chrome_json(&json)?;
    assert_eq!(trace.devices, Some(2), "both devices stay in the metadata");
    assert_eq!(trace.spans.len(), report.nodes.len());
    let recovery_spans = trace
        .spans
        .iter()
        .filter(|s| {
            s.name.starts_with("retry:")
                || s.name.starts_with("reshard:")
                || s.name.starts_with("xfer:recover:")
        })
        .count();
    assert!(recovery_spans >= 2, "retry + reshard spans are exported");
    println!(
        "chrome trace: {out} ({} spans, {recovery_spans} recovery — open at \
         https://ui.perfetto.dev)",
        trace.spans.len()
    );

    // --- Metrics: the fault counters ------------------------------------
    let m = session.metrics();
    assert!(m.faults_injected >= 2, "both faults hit the counters");
    assert!(m.devices_evicted >= 1, "the eviction hits the counters");
    println!("\nsession metrics:\n{m}");
    println!(
        "recorded {} events (fault + recovery events included)",
        log.len()
    );
    Ok(())
}
