//! Quickstart: compile the paper's GEMM task tree (Fig. 5), inspect the
//! generated warp-specialized pseudo-CUDA, and run it functionally on the
//! simulated GPU against a host reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::gemm;
use cypress::sim::{MachineConfig, Simulator};
use cypress::tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small machine so the functional run is instant.
    let machine = MachineConfig::test_gpu();
    let (m, n, k) = (128, 128, 256);

    // 1. The Cypress program: logical description + mapping specification.
    let (registry, mapping, args) = gemm::build(m, n, k, &machine)?;

    // 2. Compile: dependence analysis -> vectorization -> copy elimination
    //    -> resource allocation -> warp specialization -> codegen.
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let compiled = compiler.compile(&registry, &mapping, "gemm", &args)?;
    println!("generated warp-specialized kernel:\n{}", compiled.cuda);
    println!(
        "copy elimination removed {} copies in {} rounds; {} B shared memory per CTA",
        compiled.copyelim_stats.removed_copies, compiled.copyelim_stats.rounds, compiled.smem_bytes
    );

    // 3. Run functionally and check against the host oracle.
    let mut rng = StdRng::seed_from_u64(1);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[k, n], &mut rng, -1.0, 1.0);
    let c = Tensor::zeros(DType::F16, &[m, n]);
    let want = reference::matmul(&a, &b, DType::F16)?;

    let sim = Simulator::new(machine);
    let run = sim.run_functional(&compiled.kernel, vec![c, a, b])?;
    let err = run.params[0].relative_error(&want)?;
    println!("relative error vs reference: {err:.2e}");
    println!("{}", run.report);
    assert!(err < 1e-2);
    println!("OK");
    Ok(())
}
