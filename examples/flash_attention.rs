//! FlashAttention in Cypress: compile FA2 and FA3 task trees, verify both
//! against the host attention oracle, then compare their simulated H100
//! throughput with the hand-written baselines of Fig. 14.
//!
//! ```sh
//! cargo run --release --example flash_attention
//! ```

use cypress::baselines::{fa3, thunderkittens, triton};
use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::attention::{self, Algorithm};
use cypress::sim::{MachineConfig, Simulator};
use cypress::tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional check at small scale.
    let small = MachineConfig::test_gpu();
    let (heads, seq, d) = (1usize, 256usize, 64usize);
    let mut rng = StdRng::seed_from_u64(7);
    let q = Tensor::random(DType::F16, &[heads * seq, d], &mut rng, -1.0, 1.0);
    let k = Tensor::random(DType::F16, &[heads * seq, d], &mut rng, -1.0, 1.0);
    let v = Tensor::random(DType::F16, &[heads * seq, d], &mut rng, -1.0, 1.0);
    let want = reference::attention(&q, &k, &v, DType::F16)?;

    for alg in [Algorithm::Fa2, Algorithm::Fa3] {
        let (reg, mapping, args) = attention::build(alg, heads, seq, d, &small)?;
        let compiler = CypressCompiler::new(CompilerOptions {
            machine: small.clone(),
            ..Default::default()
        });
        let compiled = compiler.compile(&reg, &mapping, "fa", &args)?;
        let o = Tensor::zeros(DType::F16, &[heads * seq, d]);
        let run = Simulator::new(small.clone())
            .run_functional(&compiled.kernel, vec![o, q.clone(), k.clone(), v.clone()])?;
        let err = run.params[0].relative_error(&want)?;
        println!("{alg:?}: relative error {err:.2e}");
        assert!(err < 3e-2);
    }

    // Throughput comparison at paper scale (simulated H100).
    let h100 = MachineConfig::h100_sxm5();
    let (heads, seq, d) = (16usize, 8192usize, 128usize);
    let fl = attention::flops(heads, seq, d);
    let sim = Simulator::new(h100.clone());
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: h100.clone(),
        ..Default::default()
    });
    println!("\nFP16 attention, heads={heads}, seq={seq}, head_dim={d}:");
    for alg in [Algorithm::Fa2, Algorithm::Fa3] {
        let (reg, mapping, args) = attention::build(alg, heads, seq, d, &h100)?;
        let kernel = compiler.compile(&reg, &mapping, "fa", &args)?.kernel;
        let t = sim.run_timing(&kernel)?;
        println!("  Cypress {alg:?}: {:.0} TFLOP/s", t.tflops_for(fl));
    }
    for (name, kernel) in [
        ("Triton FA2", triton::attention(heads, seq, d, h100.sms)),
        (
            "ThunderKittens FA2",
            thunderkittens::attention(heads, seq, d, h100.sms),
        ),
        ("FlashAttention-3", fa3::attention(heads, seq, d, h100.sms)),
    ] {
        let t = sim.run_timing(&kernel)?;
        println!("  {name}: {:.0} TFLOP/s", t.tflops_for(fl));
    }
    Ok(())
}
