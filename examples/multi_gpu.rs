//! Tensor-parallel transformer MLP layer sharded across two simulated
//! devices: the up-projection is column-split (`H0 = X·W0`,
//! `H1 = X·W1`), each half feeds its own down-projection
//! (`P0 = H0·V0`, `P1 = H1·V1`), and an explicit all-reduce
//! communication kernel (`cypress::core::kernels::comm`) sums the
//! partial outputs — the classic Megatron-style split where the only
//! cross-device traffic is the final reduction.
//!
//! Under `PlacementPolicy::Sharded { devices: 2 }` the graph sharder
//! round-robins the two column halves onto different devices, keeps
//! each down-projection co-located with its producer, and inserts one
//! explicit `xfer:` transfer node for the partial that must cross the
//! link into the all-reduce. Functional results are bitwise identical
//! to the single-device run — placement only moves work, never changes
//! arithmetic.
//!
//! The 2-device concurrent timeline is exported as Chrome-trace JSON
//! with device-banded lanes (`tid = device * streams + stream`) — load
//! it at <https://ui.perfetto.dev> to see both devices.
//!
//! Run with `cargo run --release --example multi_gpu [trace.json]`
//! (the trace defaults to `target/multi_gpu_trace.json`).

use cypress::core::kernels::{comm, gemm};
use cypress::runtime::telemetry::TraceLog;
use cypress::runtime::{
    Binding, PlacementPolicy, Program, SchedulePolicy, Session, TaskGraph, TraceSink,
};
use cypress::sim::MachineConfig;
use cypress::tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::test_gpu();
    let d = 64usize;

    let gemm_p = Program::from_parts(gemm::build(d, d, d, &machine)?, "gemm");
    let allred_p = Program::from_parts(comm::build_all_reduce(2, d, d, &machine)?, "allred");

    // --- The layer: two column-parallel branches + one all-reduce ------
    let mut graph = TaskGraph::new();
    let mut downs = Vec::new();
    for half in 0..2 {
        let up = graph.add_node(
            &format!("up{half}"),
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::external("X"),
                Binding::External(format!("W{half}")),
            ],
        )?;
        downs.push(graph.add_node(
            &format!("down{half}"),
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::output(up, 0),
                Binding::External(format!("V{half}")),
            ],
        )?);
    }
    let sum = graph.add_node(
        "allreduce",
        allred_p,
        vec![
            Binding::Zeros,
            Binding::output(downs[0], 0),
            Binding::output(downs[1], 0),
        ],
    )?;

    // --- Inputs --------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(9);
    let mut t = |s: f32| Tensor::random(DType::F16, &[d, d], &mut rng, -s, s);
    let mut inputs = HashMap::from([("X".to_string(), t(0.5))]);
    for half in 0..2 {
        inputs.insert(format!("W{half}"), t(0.5));
        inputs.insert(format!("V{half}"), t(0.5));
    }

    // --- Single-device baseline ----------------------------------------
    let mut single = Session::new(machine.clone());
    let base = single.launch_functional(&graph, &inputs)?;
    let y_base = base.tensor(sum, 0).expect("layer output kept");

    // --- 2-way shard: same bits, two devices ---------------------------
    let log = TraceLog::new();
    let mut session = Session::new(machine.clone())
        .with_recorder(log.clone())
        .with_placement_policy(PlacementPolicy::Sharded { devices: 2 })
        .with_policy(SchedulePolicy::Concurrent { streams: 2 });
    let run = session.launch_functional(&graph, &inputs)?;
    let y_sharded = run.tensor(sum, 0).expect("layer output kept");
    assert_eq!(
        y_base.data(),
        y_sharded.data(),
        "sharded layer must be bit-identical to the single-device run"
    );
    println!("2-way shard: output bit-identical to single device");

    // --- The sharded timeline: both devices + the explicit transfer ----
    let report = session.launch_timing(&graph)?;
    assert_eq!(report.devices, 2, "shard must report both devices");
    let xfers = report
        .nodes
        .iter()
        .filter(|n| n.node.starts_with("xfer:"))
        .count();
    assert_eq!(xfers, 1, "one partial crosses the link into the all-reduce");
    println!(
        "sharded timeline (2 devices x {} streams):\n{}",
        report.streams,
        report.breakdown()
    );

    // --- Chrome-trace export with device-banded lanes ------------------
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/multi_gpu_trace.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = TraceSink::chrome_json(&report);
    std::fs::write(&out, &json)?;
    let trace = TraceSink::parse_chrome_json(&json)?;
    assert_eq!(trace.devices, Some(report.devices));
    assert_eq!(trace.streams, Some(report.streams));
    assert_eq!(trace.spans.len(), report.nodes.len());
    for span in &trace.spans {
        let node = report
            .timeline(&span.name)
            .expect("span names a report node");
        assert_eq!(
            span.tid,
            node.device * report.streams + node.stream,
            "{}: lane mismatch",
            span.name
        );
    }
    assert!(
        trace.spans.iter().any(|s| s.tid >= report.streams),
        "some span must land on the second device's lane band"
    );
    println!(
        "chrome trace: {out} ({} spans on 2 device bands — open at \
         https://ui.perfetto.dev)",
        trace.spans.len()
    );

    // --- Metrics: the comm counters ------------------------------------
    let m = session.metrics();
    assert_eq!(
        m.comm_launches, 2,
        "one transfer per launch (func + timing)"
    );
    assert_eq!(
        m.link_bytes,
        2 * comm::tensor_bytes(d, d) as u64,
        "each launch moves one d x d fp16 partial across the link"
    );
    println!("\nsession metrics:\n{m}");
    println!(
        "recorded {} events (shard assignments + link transfers included)",
        log.len()
    );
    Ok(())
}
