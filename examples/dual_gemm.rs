//! Dual-GEMM (`C = A·B1 + A·B2`, the Gated-Linear-Unit core): compile the
//! Cypress task tree, verify it, and show how first-class asynchrony lets
//! Cypress overlap the second operand's load with the first GEMM while
//! the Triton-style schedule serializes it (Fig. 13c).
//!
//! ```sh
//! cargo run --release --example dual_gemm
//! ```

use cypress::baselines::triton;
use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::kernels::dual_gemm;
use cypress::sim::{MachineConfig, Simulator};
use cypress::tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Functional check.
    let small = MachineConfig::test_gpu();
    let (m, n, k) = (64usize, 64usize, 128usize);
    let (reg, mapping, args) = dual_gemm::build(m, n, k, &small)?;
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: small.clone(),
        ..Default::default()
    });
    let compiled = compiler.compile(&reg, &mapping, "dual", &args)?;

    let mut rng = StdRng::seed_from_u64(3);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -0.7, 0.7);
    let b1 = Tensor::random(DType::F16, &[k, n], &mut rng, -0.7, 0.7);
    let b2 = Tensor::random(DType::F16, &[k, n], &mut rng, -0.7, 0.7);
    let c = Tensor::zeros(DType::F16, &[m, n]);
    let c1 = reference::matmul(&a, &b1, DType::F32)?;
    let c2 = reference::matmul(&a, &b2, DType::F32)?;
    let run = Simulator::new(small).run_functional(&compiled.kernel, vec![c, a, b1, b2])?;
    let got = &run.params[0];
    let mut max_err = 0f32;
    for i in 0..m * n {
        max_err = max_err.max((got.data()[i] - (c1.data()[i] + c2.data()[i])).abs());
    }
    println!("max abs error vs reference: {max_err:.3}");
    assert!(max_err < 0.5);

    // The Fig. 13c comparison at paper scale.
    let h100 = MachineConfig::h100_sxm5();
    let size = 8192;
    let fl = dual_gemm::flops(size, size, size);
    let (reg, mapping, args) = dual_gemm::build(size, size, size, &h100)?;
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: h100.clone(),
        ..Default::default()
    });
    let cy = compiler.compile(&reg, &mapping, "dual", &args)?.kernel;
    let tr = triton::dual_gemm(size, size, size);
    let sim = Simulator::new(h100);
    let t_cy = sim.run_timing(&cy)?;
    let t_tr = sim.run_timing(&tr)?;
    println!("Dual-GEMM {size}^3:");
    println!(
        "  Cypress: {:.0} TFLOP/s (tensor core {:.0}% busy)",
        t_cy.tflops_for(fl),
        t_cy.tc_utilization * 100.0
    );
    println!(
        "  Triton : {:.0} TFLOP/s (tensor core {:.0}% busy)",
        t_tr.tflops_for(fl),
        t_tr.tc_utilization * 100.0
    );
    println!(
        "  speedup: {:.2}x (paper band 1.36-1.40x)",
        t_tr.cycles / t_cy.cycles
    );
    Ok(())
}
