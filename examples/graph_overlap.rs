//! Multi-stream concurrent scheduling on a fan-out graph: four
//! independent GEMMs feed a two-level reduction (two dual-GEMM combiners
//! and a GEMM+Reduction sink).
//!
//! Serial scheduling pays the sum of the seven launches. Under
//! `SchedulePolicy::Concurrent` the ready-queue scheduler puts the four
//! GEMMs on four simulated streams at cycle 0; they contend for SMs and
//! bandwidth under the simulator's fluid contention model, the combiners
//! launch as their producers retire, and the makespan lands between the
//! critical path (the lower bound no schedule can beat) and the serial
//! sum. Functional results are identical under both policies.
//!
//! A [`TraceLog`] recorder rides along, and the concurrent timeline is
//! exported as Chrome-trace JSON — load the file at
//! <https://ui.perfetto.dev> to see the streams.
//!
//! Run with `cargo run --release --example graph_overlap [trace.json]`
//! (the trace defaults to `target/graph_overlap_trace.json`).

use cypress::core::kernels::{dual_gemm, gemm, gemm_reduction};
use cypress::runtime::telemetry::TraceLog;
use cypress::runtime::{Binding, Program, SchedulePolicy, Session, TaskGraph, TraceSink};
use cypress::sim::MachineConfig;
use cypress::tensor::{tensor::reference, DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let machine = MachineConfig::test_gpu();
    let d = 64usize;

    let gemm_p = Program::from_parts(gemm::build(d, d, d, &machine)?, "gemm");
    let dual_p = Program::from_parts(dual_gemm::build(d, d, d, &machine)?, "dual");
    let gr_p = Program::from_parts(gemm_reduction::build(d, d, d, &machine)?, "gr");

    // --- Fan out: four independent GEMMs ------------------------------
    let mut graph = TaskGraph::new();
    let mut gemms = Vec::new();
    for i in 0..4 {
        gemms.push(graph.add_node(
            &format!("gemm{i}"),
            gemm_p.clone(),
            vec![
                Binding::Zeros,
                Binding::External(format!("A{i}")),
                Binding::External(format!("B{i}")),
            ],
        )?);
    }
    // --- Fan in: two dual-GEMM combiners, then the reduction sink -----
    let comb0 = graph.add_node(
        "combine01",
        dual_p.clone(),
        vec![
            Binding::Zeros,
            Binding::external("X"),
            Binding::output(gemms[0], 0),
            Binding::output(gemms[1], 0),
        ],
    )?;
    let comb1 = graph.add_node(
        "combine23",
        dual_p,
        vec![
            Binding::Zeros,
            Binding::external("X"),
            Binding::output(gemms[2], 0),
            Binding::output(gemms[3], 0),
        ],
    )?;
    let sink = graph.add_node(
        "reduce",
        gr_p,
        vec![
            Binding::Zeros,
            Binding::Zeros,
            Binding::output(comb0, 0),
            Binding::output(comb1, 0),
        ],
    )?;

    // --- Inputs --------------------------------------------------------
    let mut rng = StdRng::seed_from_u64(7);
    let mut t = |s: f32| Tensor::random(DType::F16, &[d, d], &mut rng, -s, s);
    let mut inputs = HashMap::from([("X".to_string(), t(0.5))]);
    for i in 0..4 {
        inputs.insert(format!("A{i}"), t(0.5));
        inputs.insert(format!("B{i}"), t(0.5));
    }

    // --- Serial timing: the makespan is the sum of the launches --------
    let log = TraceLog::new();
    let mut session = Session::new(machine.clone()).with_recorder(log.clone());
    let serial = session.launch_timing(&graph)?;
    assert_eq!(serial.makespan, serial.serial_sum());

    // --- Concurrent timing: four streams, overlap observable -----------
    session.set_policy(SchedulePolicy::Concurrent { streams: 4 });
    let conc = session.launch_timing(&graph)?;
    println!("concurrent timeline (4 streams):\n{}", conc.breakdown());
    assert!(
        conc.makespan < serial.serial_sum(),
        "fan-out overlaps: {} < {}",
        conc.makespan,
        serial.serial_sum()
    );
    assert!(conc.makespan >= conc.critical_path);
    println!(
        "serial {: >10.0} cycles\nconcurrent {: >6.0} cycles ({:.2}x overlap, critical path {:.0})",
        serial.makespan,
        conc.makespan,
        conc.overlap_speedup(),
        conc.critical_path
    );

    // --- Functional results are policy-independent ---------------------
    let run = session.launch_functional(&graph, &inputs)?;
    let p_got = run.tensor(sink, 0).expect("sink kept");
    // Host oracle for the whole fan-in: P = (X·(C0+C1)) · (X·(C2+C3)).
    let c: Vec<Tensor> = (0..4)
        .map(|i| {
            reference::matmul(
                &inputs[&format!("A{i}")],
                &inputs[&format!("B{i}")],
                DType::F16,
            )
        })
        .collect::<Result<_, _>>()?;
    let dual_sum = |a: &Tensor, b: &Tensor| -> Result<Tensor, Box<dyn std::error::Error>> {
        let g1 = reference::matmul(&inputs["X"], a, DType::F32)?;
        let g2 = reference::matmul(&inputs["X"], b, DType::F32)?;
        let mut g = Tensor::zeros(DType::F16, &[d, d]);
        for i in 0..d * d {
            g.data_mut()[i] = DType::F16.quantize(g1.data()[i] + g2.data()[i]);
        }
        Ok(g)
    };
    let g0 = dual_sum(&c[0], &c[1])?;
    let g1 = dual_sum(&c[2], &c[3])?;
    let p_want = reference::matmul(&g0, &g1, DType::F16)?;
    let err = p_got.relative_error(&p_want)?;
    assert!(err < 3e-2, "fan-out graph relative error {err}");
    println!("\nfunctional check vs host oracle: relative error {err:.4}");

    // --- Host-side executor parallelism --------------------------------
    // Independent ready nodes (the four GEMMs) run concurrently on a
    // scoped worker pool; results join in deterministic topological
    // order, so tensors are bit-identical to the serial walk at any
    // worker count — only wall time changes.
    let workers = cypress::sim::par::available();
    let mut parallel = Session::new(machine).with_parallelism(workers);
    let prun = parallel.launch_functional(&graph, &inputs)?;
    let p_par = prun.tensor(sink, 0).expect("sink kept");
    assert_eq!(
        p_got.data(),
        p_par.data(),
        "parallel executor must be bit-identical"
    );
    println!("parallel executor ({workers} workers): bit-identical to serial");

    // --- Chrome-trace export of the concurrent timeline ----------------
    // One "X" span per node in sim cycles; the file loads directly in
    // Perfetto or chrome://tracing.
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "target/graph_overlap_trace.json".to_string());
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let json = TraceSink::chrome_json(&conc);
    std::fs::write(&out, &json)?;
    // The export round-trips through the bundled parser and matches the
    // report timeline span for span.
    let trace = TraceSink::parse_chrome_json(&json)?;
    assert_eq!(trace.streams, Some(conc.streams));
    assert_eq!(trace.spans.len(), conc.nodes.len());
    for span in &trace.spans {
        let node = conc.timeline(&span.name).expect("span names a report node");
        assert_eq!(span.tid, node.stream, "{}: stream mismatch", span.name);
        assert_eq!(span.ts.to_bits(), node.start.to_bits());
        assert_eq!(span.dur.to_bits(), (node.end - node.start).to_bits());
    }
    println!(
        "\nchrome trace: {out} ({} spans — open at https://ui.perfetto.dev)",
        trace.spans.len()
    );

    // --- Unified session metrics + the deterministic event stream ------
    println!("\nsession metrics:\n{}", session.metrics());
    println!(
        "recorded {} events (bit-identical across repeat runs; see \
         cypress_runtime::telemetry)",
        log.len()
    );
    Ok(())
}
