//! Facade crate re-exporting the Cypress workspace.
pub use cypress_baselines as baselines;
pub use cypress_core as core;
pub use cypress_sim as sim;
pub use cypress_tensor as tensor;
