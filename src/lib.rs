//! Facade crate re-exporting the Cypress workspace.
//!
//! Layering (each crate depends only on those above it):
//! [`tensor`] → [`sim`] → [`core`] → [`runtime`] → bench/[`baselines`].
//!
//! Highlights per layer: [`sim`] simulates single kernels functionally
//! and in timing mode, plus concurrent batches under a shared-machine
//! contention model (`sim::concurrent`); [`core`] compiles the paper's
//! task trees; [`runtime`] schedules task graphs over the simulator with
//! kernel caching, buffer pooling, and a per-session
//! [`runtime::SchedulePolicy`] choosing serial or multi-stream concurrent
//! execution (see `examples/graph_overlap.rs`).
pub use cypress_baselines as baselines;
pub use cypress_core as core;
pub use cypress_runtime as runtime;
pub use cypress_sim as sim;
pub use cypress_tensor as tensor;
