//! Facade crate re-exporting the Cypress workspace.
//!
//! Layering (each crate depends only on those above it):
//! [`tensor`] → [`sim`] → [`core`] → [`runtime`] → bench/[`baselines`].
pub use cypress_baselines as baselines;
pub use cypress_core as core;
pub use cypress_runtime as runtime;
pub use cypress_sim as sim;
pub use cypress_tensor as tensor;
