//! Workspace-level integration tests: the Cypress compiler's output and the
//! hand-scheduled baselines must agree functionally (they share the
//! simulator, so any disagreement is a scheduling bug in one of them), and
//! the whole stack must behave deterministically.

use cypress::baselines::hand::{gemm_kernel, GemmSchedule};
use cypress::core::compile::{CompilerOptions, CypressCompiler};
use cypress::core::front::mapping::MappingSpec;
use cypress::core::front::task::TaskRegistry;
use cypress::core::kernels::{
    attention, batched, chain, dual_gemm, gemm, gemm_reduction, reduction,
};
use cypress::core::passes::depan::EntryArg;
use cypress::sim::{MachineConfig, Simulator};
use cypress::tensor::{DType, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn cypress_and_hand_written_gemm_agree() {
    let machine = MachineConfig::test_gpu();
    let (m, n, k) = (128, 64, 96);
    let mut rng = StdRng::seed_from_u64(99);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[k, n], &mut rng, -1.0, 1.0);
    let sim = Simulator::new(machine.clone());

    // Compiled Cypress kernel.
    let (reg, mapping, args) = gemm::build(m, n, k, &machine).unwrap();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let cy = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
    let cy_out = sim
        .run_functional(
            &cy.kernel,
            vec![Tensor::zeros(DType::F16, &[m, n]), a.clone(), b.clone()],
        )
        .unwrap();

    // Hand-scheduled expert kernel.
    let s = GemmSchedule {
        tm: 64,
        tn: 64,
        tk: 32,
        wgs: 1,
        pipe: 2,
        warpspec: true,
        dual: false,
        serialize_dual: false,
        reduction: false,
        smem_reduction: false,
    };
    let hk = gemm_kernel("hand", 1, m, n, k, s);
    let hand_out = sim
        .run_functional(&hk, vec![Tensor::zeros(DType::F16, &[m, n]), a, b])
        .unwrap();

    let diff = cy_out.params[0].max_abs_diff(&hand_out.params[0]).unwrap();
    assert!(
        diff < 1e-3,
        "compiled and hand-written kernels disagree by {diff}"
    );
}

/// The fast resolved-view functional data path must be **bitwise**
/// identical to the retained scalar reference interpreter on whole
/// compiled kernels — GEMM (the blocked WGMMA microkernel plus TMA
/// copies) and attention (the SIMT softmax path: map/zip/row ops).
/// Timing must be identical too: the data-path rewrite only changes how
/// data moves on the host, never the simulated schedule.
#[test]
fn fast_functional_path_matches_scalar_oracle_on_compiled_kernels() {
    let machine = MachineConfig::test_gpu();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let mut rng = StdRng::seed_from_u64(4242);

    // GEMM 128x64x96 in f16.
    let (m, n, k) = (128, 64, 96);
    let a = Tensor::random(DType::F16, &[m, k], &mut rng, -1.0, 1.0);
    let b = Tensor::random(DType::F16, &[k, n], &mut rng, -1.0, 1.0);
    let (reg, mapping, args) = gemm::build(m, n, k, &machine).unwrap();
    let kernel = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
    let params = vec![Tensor::zeros(DType::F16, &[m, n]), a, b];
    let fast = sim.run_functional(&kernel.kernel, params.clone()).unwrap();
    let oracle = sim.run_functional_scalar(&kernel.kernel, params).unwrap();
    for (p, (x, y)) in fast.params.iter().zip(&oracle.params).enumerate() {
        assert_eq!(x.shape(), y.shape());
        for (i, (a, b)) in x.data().iter().zip(y.data()).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "gemm param {p} elem {i}");
        }
    }
    assert_eq!(fast.report.cycles.to_bits(), oracle.report.cycles.to_bits());

    // Attention (FA2) over 2 heads, seq 128, head dim 64.
    let (heads, seq, dim) = (2, 128, 64);
    let mk = |rng: &mut StdRng| Tensor::random(DType::F16, &[heads * seq, dim], rng, -1.0, 1.0);
    let (q, kx, v) = (mk(&mut rng), mk(&mut rng), mk(&mut rng));
    let (reg, mapping, args) =
        attention::build(attention::Algorithm::Fa2, heads, seq, dim, &machine).unwrap();
    let kernel = compiler.compile(&reg, &mapping, "fa", &args).unwrap();
    let params = vec![Tensor::zeros(DType::F16, &[heads * seq, dim]), q, kx, v];
    let fast = sim.run_functional(&kernel.kernel, params.clone()).unwrap();
    let oracle = sim.run_functional_scalar(&kernel.kernel, params).unwrap();
    for (i, (a, b)) in fast.params[0]
        .data()
        .iter()
        .zip(oracle.params[0].data())
        .enumerate()
    {
        assert_eq!(a.to_bits(), b.to_bits(), "attention out elem {i}");
    }
}

/// Build every entry parameter from its [`EntryArg`] descriptor: random
/// data in the declared dtype/shape, seeded per kernel so the three
/// paths see identical bits.
fn random_params(args: &[EntryArg], rng: &mut StdRng) -> Vec<Tensor> {
    args.iter()
        .map(|a| Tensor::random(a.dtype, &[a.rows, a.cols], rng, -1.0, 1.0))
        .collect()
}

/// Compile and run one kernel through all three functional paths —
/// scalar reference interpreter, fast-apply tree walk, bytecode VM —
/// and require bit-identical tensors and cycles.
fn assert_three_way(
    name: &str,
    built: (TaskRegistry, MappingSpec, Vec<EntryArg>),
    machine: &MachineConfig,
    seed: u64,
) {
    let (reg, mapping, args) = built;
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let compiled = compiler.compile(&reg, &mapping, name, &args).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let params = random_params(&args, &mut rng);

    let sim = Simulator::new(machine.clone());
    let byte = sim
        .run_functional(&compiled.kernel, params.clone())
        .unwrap();
    let walk = sim
        .run_functional_walk(&compiled.kernel, params.clone())
        .unwrap();
    let scalar = sim
        .run_functional_scalar(&compiled.kernel, params.clone())
        .unwrap();
    // The compiler's own cached lowering (what the runtime replays on
    // every launch) must agree with the internal lowering too.
    let cached = sim
        .run_functional_lowered(&compiled.kernel, &compiled.lowered, params)
        .unwrap();

    for (which, other) in [("walk", &walk), ("scalar", &scalar), ("cached", &cached)] {
        assert_eq!(
            byte.report.cycles.to_bits(),
            other.report.cycles.to_bits(),
            "{name}: bytecode vs {which} cycles diverge"
        );
        for (p, (x, y)) in byte.params.iter().zip(&other.params).enumerate() {
            assert_eq!(x.shape(), y.shape());
            for (i, (a, b)) in x.data().iter().zip(y.data()).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{name}: bytecode vs {which}, param {p} elem {i}"
                );
            }
        }
    }
}

/// Scalar oracle, fast-apply tree walk, and bytecode VM agree bitwise on
/// all five paper kernels plus the fused chained-GEMM and
/// GEMM+Reduction kernels.
#[test]
fn three_paths_agree_bitwise_on_paper_kernels() {
    let machine = MachineConfig::test_gpu();
    let (m, n, k) = (128, 64, 96);
    assert_three_way("gemm", gemm::build(m, n, k, &machine).unwrap(), &machine, 1);
    assert_three_way(
        "dual",
        dual_gemm::build(64, 64, 64, &machine).unwrap(),
        &machine,
        2,
    );
    assert_three_way(
        "batched",
        batched::build(2, 64, 64, 64, &machine).unwrap(),
        &machine,
        3,
    );
    assert_three_way(
        "reduce",
        reduction::build(128, 96, &machine).unwrap(),
        &machine,
        4,
    );
    assert_three_way(
        "fa",
        attention::build(attention::Algorithm::Fa2, 2, 128, 64, &machine).unwrap(),
        &machine,
        5,
    );
    assert_three_way(
        "chain",
        chain::build(64, 64, 64, 64, &machine).unwrap(),
        &machine,
        6,
    );
    assert_three_way(
        "gr",
        gemm_reduction::build(64, 64, 64, &machine).unwrap(),
        &machine,
        7,
    );
}

#[test]
fn whole_stack_is_deterministic() {
    let machine = MachineConfig::h100_sxm5();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let run = || {
        let (reg, mapping, args) = gemm::build(4096, 4096, 4096, &machine).unwrap();
        let c = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
        sim.run_timing(&c.kernel).unwrap().cycles
    };
    assert_eq!(run(), run());
}

#[test]
fn fa3_overlaps_more_than_fa2() {
    // The FA3 restructuring exists to overlap softmax with Tensor Core
    // work; the schedule must show it (higher TC utilization).
    let machine = MachineConfig::h100_sxm5();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let mut cycles = Vec::new();
    for alg in [attention::Algorithm::Fa2, attention::Algorithm::Fa3] {
        let (reg, mapping, args) = attention::build(alg, 16, 4096, 128, &machine).unwrap();
        let c = compiler.compile(&reg, &mapping, "fa", &args).unwrap();
        cycles.push(sim.run_timing(&c.kernel).unwrap().cycles);
    }
    assert!(
        cycles[1] < cycles[0],
        "FA3 {} should beat FA2 {}",
        cycles[1],
        cycles[0]
    );
}

#[test]
fn pipeline_depth_ablation_shows_latency_hiding() {
    let machine = MachineConfig::h100_sxm5();
    let compiler = CypressCompiler::new(CompilerOptions {
        machine: machine.clone(),
        ..Default::default()
    });
    let sim = Simulator::new(machine.clone());
    let mut prev = f64::INFINITY;
    for pipe in [1usize, 3] {
        let cfg = gemm::GemmConfig {
            pipeline: pipe,
            ..gemm::GemmConfig::h100()
        };
        let (reg, mapping, args) = gemm::build_with(4096, 4096, 4096, cfg).unwrap();
        let c = compiler.compile(&reg, &mapping, "gemm", &args).unwrap();
        let cycles = sim.run_timing(&c.kernel).unwrap().cycles;
        assert!(cycles < prev, "deeper pipeline must not be slower");
        prev = cycles;
    }
}
